package cep

import (
	"fmt"
	"strings"

	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/model"
)

// gen deals deterministic pseudo-choices off a byte string — the shared
// randomness source of the fuzz target (bytes come from the fuzzer) and
// the property tests (bytes come from a seeded PRNG). Exhausted input
// yields zeros, so every prefix decodes to something.
type gen struct {
	data []byte
	i    int
}

func (g *gen) byte() byte {
	if g.i >= len(g.data) {
		return 0
	}
	b := g.data[g.i]
	g.i++
	return b
}

// n returns a choice in [0, max).
func (g *gen) n(max int) int {
	if max <= 0 {
		return 0
	}
	return int(g.byte()) % max
}

// chance is true with probability num/256.
func (g *gen) chance(num int) bool { return int(g.byte()) < num }

// genLocs is the location vocabulary of generated streams and patterns.
const genLocs = 5

// genTags is the object vocabulary: EPC-encoded tags across both
// companies and all three levels, so level()/company() atoms and the
// containment pool are meaningful.
func genTags() (objs, containers []model.Tag) {
	for _, company := range []uint32{7, 9} {
		for _, lvl := range []model.Level{model.LevelItem, model.LevelCase, model.LevelPallet} {
			for serial := uint32(1); serial <= 2; serial++ {
				tag := epc.MustEncode(epc.Identity{Level: lvl, Company: company, ItemRef: 1, Serial: serial})
				objs = append(objs, tag)
				if lvl == model.LevelPallet {
					containers = append(containers, tag)
				}
			}
		}
	}
	return objs, containers
}

// genPattern builds a random — but always valid — pattern source string.
// Validity is by construction: refs only target earlier positive steps, a
// trailing NOT forces a WITHIN, adjacent NOTs are avoided.
func genPattern(g *gen) string {
	_, containers := genTags()
	nsteps := 1 + g.n(4)
	var steps []string
	var positives []int // 1-based indices of positive steps, for @refs
	prevNeg := false
	for si := 1; si <= nsteps; si++ {
		neg := si > 1 && !prevNeg && g.chance(72)
		prevNeg = neg
		var atoms []string
		switch g.n(6) {
		case 0:
			atoms = append(atoms, "start("+genLocArg(g, positives)+")")
		case 1:
			atoms = append(atoms, "end("+genLocArg(g, positives)+")")
		case 2:
			atoms = append(atoms, "contain("+genContArg(g, positives, containers)+")")
		case 3:
			atoms = append(atoms, "uncontain("+genContArg(g, positives, containers)+")")
		case 4:
			atoms = append(atoms, "missing()")
		case 5:
			atoms = append(atoms, "any()")
		}
		if g.chance(48) {
			objs, _ := genTags()
			atoms = append(atoms, fmt.Sprintf("tag(%d)", objs[g.n(len(objs))]))
		}
		if g.chance(48) {
			atoms = append(atoms, "level("+[]string{"item", "case", "pallet"}[g.n(3)]+")")
		}
		if g.chance(48) {
			atoms = append(atoms, fmt.Sprintf("company(%d)", []int{7, 9}[g.n(2)]))
		}
		s := strings.Join(atoms, " & ")
		if neg {
			s = "NOT " + s
		} else {
			positives = append(positives, si)
		}
		steps = append(steps, s)
	}
	src := "SEQ(" + strings.Join(steps, ", ") + ")"
	if prevNeg || g.chance(160) {
		src += fmt.Sprintf(" WITHIN %d", 1+g.n(12))
	}
	return src
}

func genLocArg(g *gen, positives []int) string {
	switch g.n(4) {
	case 0:
		return ""
	case 1:
		lo := g.n(genLocs)
		if g.chance(96) {
			hi := lo + g.n(genLocs-lo)
			neg := ""
			if g.chance(64) {
				neg = "!"
			}
			return fmt.Sprintf("%s%d..%d", neg, lo, hi)
		}
		return fmt.Sprintf("%d", lo)
	default:
		if len(positives) == 0 {
			return fmt.Sprintf("%d", g.n(genLocs))
		}
		neg := ""
		if g.chance(64) {
			neg = "!"
		}
		return fmt.Sprintf("%s@%d", neg, positives[g.n(len(positives))])
	}
}

func genContArg(g *gen, positives []int, containers []model.Tag) string {
	switch g.n(3) {
	case 0:
		return ""
	case 1:
		return fmt.Sprintf("%d", containers[g.n(len(containers))])
	default:
		if len(positives) == 0 {
			return ""
		}
		return fmt.Sprintf("@%d", positives[g.n(len(positives))])
	}
}

// genStream builds a random timed event stream grouped into epochs, with
// generator-level fault injection: duplicated events and small epoch gaps
// mimic what the fault injector does to the upstream readings.
func genStream(g *gen) []TimedEvent {
	objs, containers := genTags()
	count := 4 + g.n(48)
	now := model.Epoch(1 + g.n(4))
	var out []TimedEvent
	var prev *event.Event
	for i := 0; i < count; i++ {
		now += model.Epoch(g.n(3)) // 0 = same epoch, else a gap
		var ev event.Event
		if prev != nil && g.chance(24) {
			ev = *prev // duplicate delivery
		} else {
			obj := objs[g.n(len(objs))]
			loc := model.LocationID(g.n(genLocs))
			switch event.Kind(1 + g.n(5)) {
			case event.StartLocation:
				ev = event.NewStartLocation(obj, loc, now)
			case event.EndLocation:
				ev = event.NewEndLocation(obj, loc, now, now)
			case event.StartContainment:
				ev = event.NewStartContainment(obj, containers[g.n(len(containers))], now)
			case event.EndContainment:
				ev = event.NewEndContainment(obj, containers[g.n(len(containers))], now, now)
			default:
				ev = event.NewMissing(obj, loc, now)
			}
		}
		prev = &ev
		out = append(out, TimedEvent{At: now, Ev: ev})
	}
	return out
}

// feedEngine groups a timed stream into Epoch calls and returns the final
// clock value fed (including the optional flush advance).
func feedEngine(e *Engine, stream []TimedEvent, flush model.Epoch) model.Epoch {
	var batch []event.Event
	var now model.Epoch
	for i, te := range stream {
		if i > 0 && te.At != now {
			e.Epoch(now, batch)
			batch = batch[:0]
		}
		now = te.At
		batch = append(batch, te.Ev)
	}
	if len(batch) > 0 || len(stream) > 0 {
		e.Epoch(now, batch)
	}
	if flush > now {
		e.Epoch(flush, nil)
		now = flush
	}
	return now
}
