package cep

import (
	"sort"
	"testing"

	"spire/internal/model"
)

// FuzzCEPMatchEquivalence is the differential fuzz target: a random (but
// valid-by-construction) pattern and a random fault-injected event stream
// are fed to the incremental NFA engine and to the brute-force window-scan
// oracle, and the two match sets must be identical. The engine runs with
// huge caps so neither eviction nor ring backpressure can hide a
// divergence.
func FuzzCEPMatchEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte("SEQ theft misroute coldchain absence window"))
	f.Add([]byte{4, 200, 0, 0, 0, 5, 3, 3, 100, 100, 100, 1, 1, 2, 2, 9,
		9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 254, 253, 252, 251, 250})
	f.Add([]byte{2, 80, 4, 0, 60, 90, 1, 3, 0, 0, 12, 34, 56, 78, 90, 12,
		7, 7, 7, 9, 9, 9, 1, 0, 1, 0, 1, 0, 200, 100, 50, 25})

	f.Fuzz(func(t *testing.T, data []byte) {
		g := &gen{data: data}
		src := genPattern(g)
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("generated pattern %q failed to parse: %v", src, err)
		}
		stream := genStream(g)

		e := NewEngine(Config{MaxRuns: 1 << 20, MaxMatches: 1 << 20})
		id, err := e.Subscribe(src)
		if err != nil {
			t.Fatalf("subscribe %q: %v", src, err)
		}

		// Flush with a variable advance so the trailing-NOT end-of-stream
		// cutoff (deadline reached vs not) is exercised both ways.
		var flush model.Epoch
		if len(stream) > 0 {
			flush = stream[len(stream)-1].At + model.Epoch(g.n(10))
		}
		end := feedEngine(e, stream, flush)

		got, _, _ := e.Matches(id)
		sort.Slice(got, func(a, b int) bool {
			if got[a].Object != got[b].Object {
				return got[a].Object < got[b].Object
			}
			if got[a].Start != got[b].Start {
				return got[a].Start < got[b].Start
			}
			return got[a].At < got[b].At
		})
		want := MatchReference(p, stream, end, id)

		if len(got) != len(want) {
			t.Fatalf("pattern %q end=%d: engine %d matches, oracle %d\nengine: %+v\noracle: %+v\nstream: %+v",
				src, end, len(got), len(want), got, want, stream)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("pattern %q end=%d: match %d differs\nengine: %+v\noracle: %+v\nstream: %+v",
					src, end, i, got[i], want[i], stream)
			}
		}
	})
}
