package cep

import (
	"sort"

	"spire/internal/event"
	"spire/internal/model"
)

// TimedEvent pairs an event with the epoch it was dispatched in — the
// engine clock when the event entered Epoch().
type TimedEvent struct {
	At model.Epoch
	Ev event.Event
}

// MatchReference is the brute-force window-scan oracle the differential
// fuzz target checks the incremental engine against. For every event that
// could anchor the pattern it scans forward over the rest of the stream,
// applying exactly the semantics documented on the engine:
//
//   - runs are partitioned by the event's object;
//   - each event advances a run by at most one positive step;
//   - an event satisfying both a non-trailing NOT and the following
//     positive step advances the sequence;
//   - positive steps must land within [t1, t1+W]; a trailing NOT holds
//     through (t1, t1+W] and completes at t1+W, provided the engine clock
//     reached the window end (end is the last clock value fed).
//
// Matches are returned sorted by (Object, Start, At); duplicates are kept
// (two anchors at one epoch yield two matches, as in the engine).
func MatchReference(p *Pattern, evs []TimedEvent, end model.Epoch, subID int) []Match {
	var out []Match
	for i, te := range evs {
		if te.Ev.Object == model.NoTag || !p.matches(0, te.Ev, nil) {
			continue
		}
		if m, ok := scanFrom(p, evs, i, end); ok {
			m.Sub = subID
			out = append(out, m)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Object != out[b].Object {
			return out[a].Object < out[b].Object
		}
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].At < out[b].At
	})
	return out
}

// scanFrom simulates one run anchored at evs[i].
func scanFrom(p *Pattern, evs []TimedEvent, i int, end model.Epoch) (Match, bool) {
	anchor := evs[i]
	obj := anchor.Ev.Object
	t1 := anchor.At
	deadline := model.InfiniteEpoch
	if p.Within > 0 {
		deadline = t1 + p.Within
	}
	var binds [MaxSteps]binding
	bind(&binds, 0, anchor.Ev)
	idx := 1
	if idx >= len(p.Steps) {
		return Match{Object: obj, Start: t1, At: t1}, true
	}

	for j := i + 1; j < len(evs); j++ {
		te := evs[j]
		if te.At > deadline {
			break // window closed before this event
		}
		if te.Ev.Object != obj {
			continue
		}
		st := &p.Steps[idx]
		if st.Neg {
			if idx == len(p.Steps)-1 {
				if p.matches(idx, te.Ev, &binds) {
					return Match{}, false // absence violated
				}
				continue
			}
			if p.matches(idx+1, te.Ev, &binds) {
				bind(&binds, idx+1, te.Ev)
				idx += 2
				if idx >= len(p.Steps) {
					return Match{Object: obj, Start: t1, At: te.At}, true
				}
				continue
			}
			if p.matches(idx, te.Ev, &binds) {
				return Match{}, false
			}
			continue
		}
		if p.matches(idx, te.Ev, &binds) {
			bind(&binds, idx, te.Ev)
			idx++
			if idx >= len(p.Steps) {
				return Match{Object: obj, Start: t1, At: te.At}, true
			}
		}
	}

	// Stream exhausted (or window closed): only a pending trailing NOT
	// can still complete, and only if the clock reached the window end.
	if idx == len(p.Steps)-1 && p.Steps[idx].Neg && deadline <= end {
		return Match{Object: obj, Start: t1, At: deadline}, true
	}
	return Match{}, false
}
