// Package cep is a SASE-style complex-event subscription engine over
// SPIRE's compressed output stream. Subscriptions are written in a small
// pattern language —
//
//	SEQ(step, step, ...) WITHIN <epochs>
//
// where each step is a conjunction of predicate atoms over one event,
// optionally prefixed with NOT (negation between steps, or trailing
// absence detection). Patterns compile to nondeterministic finite automata
// evaluated incrementally one event at a time, with runs implicitly
// partitioned by the event's object tag and per-subscription state bounded
// by an active-run cap with oldest-run eviction (SASE's partitioned
// skip-till-next-match semantics; see PAPERS.md, "High-Performance Complex
// Event Processing over Streams").
//
// Atoms:
//
//	start(L)      StartLocation at L      end(L)       EndLocation at L
//	start(A..B)   location in [A,B]       start(!A..B) location outside [A,B]
//	start(@2)     location bound by step 2 (start(!@2): differs from it)
//	contain(T)    StartContainment in T   uncontain(T) EndContainment from T
//	contain(@2)   container bound by step 2
//	missing()     Missing report          any()        any event
//	tag(T)        object is tag T         level(case)  EPC level (item|case|pallet)
//	company(N)    EPC company prefix N
//
// start/end/contain/uncontain with empty parentheses match their kind at
// any location/container. A step with no kind atom matches every kind.
// The first step must be positive; NOT may not appear twice in a row; a
// trailing NOT requires a WITHIN window (the absence is detected when the
// window closes).
package cep

import (
	"fmt"
	"strconv"
	"strings"

	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/model"
)

// MaxSteps bounds the pattern length so per-run binding state stays a
// fixed-size array (no allocation per run).
const MaxSteps = 8

// KindSet is a bitmask over event kinds; zero matches every kind.
type KindSet uint8

// Has reports whether k is in the set (an empty set has every kind).
func (s KindSet) Has(k event.Kind) bool {
	return s == 0 || s&(1<<uint(k)) != 0
}

func kindBit(k event.Kind) KindSet { return 1 << uint(k) }

// Condition modes for the location/container argument of a kind atom.
const (
	condAny   = iota // no constraint
	condRange        // value in [Lo, Hi] (negated: outside)
	condRef          // value equals the binding of step Ref (negated: differs)
	condEq           // container equals Tag
)

// LocCond constrains the location of a location-kind event.
type LocCond struct {
	Mode   int
	Neg    bool
	Lo, Hi model.LocationID
	Ref    int // 0-based step index for condRef
}

// ContCond constrains the container of a containment-kind event.
type ContCond struct {
	Mode int
	Tag  model.Tag
	Ref  int
}

// Step is one conjunction of atoms, optionally negated.
type Step struct {
	Neg bool

	Kinds      KindSet
	Tag        model.Tag // non-zero: object must equal
	HasLevel   bool
	Level      model.Level
	HasCompany bool
	Company    uint32
	Loc        LocCond
	Cont       ContCond
}

// Pattern is a compiled subscription pattern.
type Pattern struct {
	Steps  []Step
	Within model.Epoch // 0 = unbounded
	src    string
}

// String returns the source text the pattern was parsed from.
func (p *Pattern) String() string { return p.src }

// binding is the payload captured when a positive step matches.
type binding struct {
	loc  model.LocationID
	cont model.Tag
}

// matches reports whether e satisfies step si given the bindings of the
// earlier positive steps.
func (p *Pattern) matches(si int, e event.Event, binds *[MaxSteps]binding) bool {
	st := &p.Steps[si]
	if !st.Kinds.Has(e.Kind) {
		return false
	}
	if st.Tag != model.NoTag && e.Object != st.Tag {
		return false
	}
	if st.HasLevel || st.HasCompany {
		id, err := epc.Decode(e.Object)
		if err != nil {
			return false
		}
		if st.HasLevel && id.Level != st.Level {
			return false
		}
		if st.HasCompany && id.Company != st.Company {
			return false
		}
	}
	switch st.Loc.Mode {
	case condRange:
		in := e.Kind.Location() && e.Location >= st.Loc.Lo && e.Location <= st.Loc.Hi
		if in == st.Loc.Neg {
			return false
		}
	case condRef:
		if !e.Kind.Location() {
			return false
		}
		ref := binds[st.Loc.Ref].loc
		if ref == model.LocationNone {
			return false // referenced step bound a non-location event
		}
		if (e.Location == ref) == st.Loc.Neg {
			return false
		}
	}
	switch st.Cont.Mode {
	case condEq:
		if !e.Kind.Containment() || e.Container != st.Cont.Tag {
			return false
		}
	case condRef:
		ref := binds[st.Cont.Ref].cont
		if !e.Kind.Containment() || ref == model.NoTag || e.Container != ref {
			return false
		}
	}
	return true
}

// bind captures step si's payload from e.
func bind(binds *[MaxSteps]binding, si int, e event.Event) {
	b := binding{loc: model.LocationNone, cont: model.NoTag}
	if e.Kind.Location() {
		b.loc = e.Location
	}
	if e.Kind.Containment() {
		b.cont = e.Container
	}
	binds[si] = b
}

// trailingNot reports whether the pattern ends with a negated step (the
// absence completes when the window closes).
func (p *Pattern) trailingNot() bool {
	return p.Steps[len(p.Steps)-1].Neg
}

// Parse compiles a pattern from its source text.
func Parse(src string) (*Pattern, error) {
	ps := &parser{src: src, rest: src}
	p, err := ps.pattern()
	if err != nil {
		return nil, fmt.Errorf("cep: parse %q: %w", src, err)
	}
	p.src = src
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("cep: parse %q: %w", src, err)
	}
	return p, nil
}

// MustParse is Parse for the built-in detectors and tests.
func MustParse(src string) *Pattern {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// validate enforces the structural rules shared by engine and reference.
func (p *Pattern) validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("empty SEQ")
	}
	if len(p.Steps) > MaxSteps {
		return fmt.Errorf("%d steps exceed the maximum %d", len(p.Steps), MaxSteps)
	}
	if p.Steps[0].Neg {
		return fmt.Errorf("first step must be positive")
	}
	for i := 1; i < len(p.Steps); i++ {
		if p.Steps[i].Neg && p.Steps[i-1].Neg {
			return fmt.Errorf("adjacent NOT steps (step %d)", i+1)
		}
	}
	if p.trailingNot() && p.Within <= 0 {
		return fmt.Errorf("trailing NOT requires a WITHIN window")
	}
	if p.Within < 0 {
		return fmt.Errorf("WITHIN %d must be positive", p.Within)
	}
	for i := range p.Steps {
		st := &p.Steps[i]
		for _, c := range []struct {
			mode, ref int
			what      string
		}{{st.Loc.Mode, st.Loc.Ref, "location"}, {st.Cont.Mode, st.Cont.Ref, "container"}} {
			if c.mode != condRef {
				continue
			}
			if c.ref >= i {
				return fmt.Errorf("step %d: %s @%d must reference an earlier step", i+1, c.what, c.ref+1)
			}
			if p.Steps[c.ref].Neg {
				return fmt.Errorf("step %d: %s @%d references a NOT step, which binds nothing", i+1, c.what, c.ref+1)
			}
		}
	}
	return nil
}

// parser is a hand-rolled recursive-descent parser over the tiny grammar.
type parser struct {
	src  string
	rest string
}

func (ps *parser) ws() {
	ps.rest = strings.TrimLeft(ps.rest, " \t\r\n")
}

// lit consumes the literal s if it is next (after whitespace).
func (ps *parser) lit(s string) bool {
	ps.ws()
	if strings.HasPrefix(ps.rest, s) {
		ps.rest = ps.rest[len(s):]
		return true
	}
	return false
}

// ident consumes a lowercase/uppercase identifier.
func (ps *parser) ident() string {
	ps.ws()
	i := 0
	for i < len(ps.rest) {
		c := ps.rest[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			i++
			continue
		}
		break
	}
	id := ps.rest[:i]
	ps.rest = ps.rest[i:]
	return id
}

// int parses an unsigned decimal; tags are full-range uint64 EPC values.
func (ps *parser) int() (uint64, error) {
	ps.ws()
	i := 0
	for i < len(ps.rest) && ps.rest[i] >= '0' && ps.rest[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, fmt.Errorf("expected a number at %q", trunc(ps.rest))
	}
	v, err := strconv.ParseUint(ps.rest[:i], 10, 64)
	if err != nil {
		return 0, err
	}
	ps.rest = ps.rest[i:]
	return v, nil
}

func trunc(s string) string {
	if len(s) > 24 {
		return s[:24] + "..."
	}
	return s
}

func (ps *parser) pattern() (*Pattern, error) {
	if !ps.lit("SEQ") {
		return nil, fmt.Errorf("expected SEQ at %q", trunc(ps.rest))
	}
	if !ps.lit("(") {
		return nil, fmt.Errorf("expected ( after SEQ")
	}
	p := &Pattern{}
	for {
		st, err := ps.step()
		if err != nil {
			return nil, err
		}
		p.Steps = append(p.Steps, st)
		if ps.lit(",") {
			continue
		}
		break
	}
	if !ps.lit(")") {
		return nil, fmt.Errorf("expected ) at %q", trunc(ps.rest))
	}
	if ps.lit("WITHIN") {
		n, err := ps.int()
		if err != nil {
			return nil, err
		}
		if n < 1 || n > uint64(model.InfiniteEpoch/2) {
			return nil, fmt.Errorf("WITHIN %d out of range", n)
		}
		p.Within = model.Epoch(n)
	}
	ps.ws()
	if ps.rest != "" {
		return nil, fmt.Errorf("trailing input %q", trunc(ps.rest))
	}
	return p, nil
}

func (ps *parser) step() (Step, error) {
	var st Step
	st.Neg = ps.lit("NOT")
	hasKind := false
	for {
		ps.ws()
		name := ps.ident()
		if name == "" {
			return st, fmt.Errorf("expected an atom at %q", trunc(ps.rest))
		}
		if err := ps.atom(&st, name, &hasKind); err != nil {
			return st, err
		}
		if ps.lit("&") {
			continue
		}
		return st, nil
	}
}

// atom parses one atom's argument list and folds it into the step.
func (ps *parser) atom(st *Step, name string, hasKind *bool) error {
	if !ps.lit("(") {
		return fmt.Errorf("expected ( after %q", name)
	}
	kind := func(k event.Kind) error {
		if *hasKind {
			return fmt.Errorf("step has more than one event-kind atom (%q)", name)
		}
		*hasKind = true
		st.Kinds = kindBit(k)
		return nil
	}
	var err error
	switch name {
	case "any":
	case "missing":
		err = kind(event.Missing)
	case "start", "end":
		k := event.StartLocation
		if name == "end" {
			k = event.EndLocation
		}
		if err = kind(k); err == nil {
			err = ps.locArg(&st.Loc)
		}
	case "contain", "uncontain":
		k := event.StartContainment
		if name == "uncontain" {
			k = event.EndContainment
		}
		if err = kind(k); err == nil {
			err = ps.contArg(&st.Cont)
		}
	case "tag":
		var v uint64
		if v, err = ps.int(); err == nil {
			if v == 0 {
				err = fmt.Errorf("tag(%d) must be positive", v)
			}
			st.Tag = model.Tag(v)
		}
	case "level":
		lvl := ps.ident()
		switch lvl {
		case "item":
			st.Level = model.LevelItem
		case "case":
			st.Level = model.LevelCase
		case "pallet":
			st.Level = model.LevelPallet
		default:
			err = fmt.Errorf("unknown level %q (item|case|pallet)", lvl)
		}
		st.HasLevel = true
	case "company":
		var v uint64
		if v, err = ps.int(); err == nil {
			if v > uint64(epc.MaxCompany) {
				err = fmt.Errorf("company(%d) out of range", v)
			}
			st.HasCompany = true
			st.Company = uint32(v)
		}
	default:
		return fmt.Errorf("unknown atom %q", name)
	}
	if err != nil {
		return err
	}
	if !ps.lit(")") {
		return fmt.Errorf("expected ) closing %q at %q", name, trunc(ps.rest))
	}
	return nil
}

// locArg parses the optional location argument: empty, [!]A[..B], [!]@N.
func (ps *parser) locArg(c *LocCond) error {
	ps.ws()
	if strings.HasPrefix(ps.rest, ")") {
		return nil
	}
	c.Neg = ps.lit("!")
	if ps.lit("@") {
		n, err := ps.int()
		if err != nil {
			return err
		}
		if n < 1 || n > MaxSteps {
			return fmt.Errorf("@%d: step references are 1-based and at most %d", n, MaxSteps)
		}
		c.Mode, c.Ref = condRef, int(n)-1
		return nil
	}
	lo, err := ps.int()
	if err != nil {
		return err
	}
	hi := lo
	if ps.lit("..") {
		if hi, err = ps.int(); err != nil {
			return err
		}
		if hi < lo {
			return fmt.Errorf("empty location range %d..%d", lo, hi)
		}
	}
	if hi > 1<<31-1 {
		return fmt.Errorf("location %d exceeds the 32-bit id space", hi)
	}
	c.Mode, c.Lo, c.Hi = condRange, model.LocationID(lo), model.LocationID(hi)
	return nil
}

// contArg parses the optional container argument: empty, T, @N.
func (ps *parser) contArg(c *ContCond) error {
	ps.ws()
	if strings.HasPrefix(ps.rest, ")") {
		return nil
	}
	if ps.lit("@") {
		n, err := ps.int()
		if err != nil {
			return err
		}
		if n < 1 || n > MaxSteps {
			return fmt.Errorf("@%d: step references are 1-based and at most %d", n, MaxSteps)
		}
		c.Mode, c.Ref = condRef, int(n)-1
		return nil
	}
	v, err := ps.int()
	if err != nil {
		return err
	}
	if v == 0 {
		return fmt.Errorf("contain(%d): container tag must be positive", v)
	}
	c.Mode, c.Tag = condEq, model.Tag(v)
	return nil
}
