package cep

import "spire/internal/query"

// Attach registers the engine as an epoch observer on the watcher, the
// wiring point between the substrate's compressed output stream and the
// subscription engine: core.Substrate.Watch(w) frames each epoch, the
// watcher forwards the framing and every event here, and the engine's
// incremental NFA evaluation runs inline on the pipeline goroutine.
func (e *Engine) Attach(w *query.Watcher) { w.SubscribeEpochs(e) }
