package cep

import (
	"strings"
	"testing"

	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/telemetry"
)

func TestParseValid(t *testing.T) {
	for _, src := range []string{
		"SEQ(any())",
		"SEQ(start())",
		"SEQ(start(3))",
		"SEQ(start(2..5))",
		"SEQ(start(!2..5))",
		"SEQ(missing() & level(case), NOT start()) WITHIN 40",
		"SEQ(start(7) & level(case), contain(), uncontain(@2), start(2..5)) WITHIN 150",
		"SEQ(start(2..5) & company(9) & level(case), NOT start(2)) WITHIN 25",
		"SEQ(tag(42), end(@1)) WITHIN 10",
		"SEQ(contain(99), uncontain(99))",
		"SEQ(start(1), NOT end(!@1), start(2)) WITHIN 9",
	} {
		p, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if p.String() != src {
			t.Errorf("String() = %q, want %q", p.String(), src)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	for _, tc := range []struct{ src, wantErr string }{
		{"", "expected SEQ"},
		{"SEQ()", "expected an atom"},
		{"SEQ(NOT start())", "first step must be positive"},
		{"SEQ(start(), NOT any(), NOT any(), end())", "adjacent NOT"},
		{"SEQ(start(), NOT end())", "trailing NOT requires"},
		{"SEQ(start()) WITHIN 0", "out of range"},
		{"SEQ(start(@1))", "must reference an earlier step"},
		{"SEQ(start(), NOT any(), start(@2)) WITHIN 5", "references a NOT step"},
		{"SEQ(bogus())", "unknown atom"},
		{"SEQ(start() & missing())", "more than one event-kind atom"},
		{"SEQ(level(crate))", "unknown level"},
		{"SEQ(start(5..2))", "empty location range"},
		{"SEQ(start()) garbage", "trailing input"},
		{"SEQ(tag(0))", "must be positive"},
		{"SEQ(" + strings.Repeat("any(),", MaxSteps) + "any())", "exceed"},
	} {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("Parse(%q): expected error containing %q", tc.src, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Parse(%q) error = %v, want substring %q", tc.src, err, tc.wantErr)
		}
	}
}

// collect subscribes src with a callback accumulating matches.
func collect(t *testing.T, e *Engine, src string) (*[]Match, int) {
	t.Helper()
	var ms []Match
	id, err := e.SubscribeFunc(src, func(m Match) { ms = append(ms, m) })
	if err != nil {
		t.Fatalf("SubscribeFunc(%q): %v", src, err)
	}
	return &ms, id
}

func TestSequenceAndWindow(t *testing.T) {
	e := NewEngine(Config{})
	ms, _ := collect(t, e, "SEQ(start(1), start(2)) WITHIN 10")

	e.Epoch(5, []event.Event{event.NewStartLocation(7, 1, 5)})
	e.Epoch(12, []event.Event{event.NewStartLocation(7, 2, 12)})
	if len(*ms) != 1 || (*ms)[0].Start != 5 || (*ms)[0].At != 12 {
		t.Fatalf("matches = %+v, want one (5,12)", *ms)
	}

	// Outside the window: anchored at 20, second step at 31 > 30.
	e.Epoch(20, []event.Event{event.NewStartLocation(8, 1, 20)})
	e.Epoch(31, []event.Event{event.NewStartLocation(8, 2, 31)})
	if len(*ms) != 1 {
		t.Fatalf("window leak: %+v", *ms)
	}

	// At the window boundary (inclusive).
	e.Epoch(40, []event.Event{event.NewStartLocation(9, 1, 40)})
	e.Epoch(50, []event.Event{event.NewStartLocation(9, 2, 50)})
	if len(*ms) != 2 {
		t.Fatalf("boundary miss: %+v", *ms)
	}
}

func TestObjectPartitioning(t *testing.T) {
	e := NewEngine(Config{})
	ms, _ := collect(t, e, "SEQ(start(1), start(2)) WITHIN 10")
	// Steps satisfied by different objects must not combine.
	e.Epoch(1, []event.Event{event.NewStartLocation(7, 1, 1)})
	e.Epoch(2, []event.Event{event.NewStartLocation(8, 2, 2)})
	if len(*ms) != 0 {
		t.Fatalf("cross-object match: %+v", *ms)
	}
}

func TestNegationBetweenSteps(t *testing.T) {
	e := NewEngine(Config{})
	ms, _ := collect(t, e, "SEQ(start(1), NOT start(9), start(2)) WITHIN 20")

	// Clean sequence: matches.
	e.Epoch(1, []event.Event{event.NewStartLocation(7, 1, 1)})
	e.Epoch(3, []event.Event{event.NewStartLocation(7, 2, 3)})
	if len(*ms) != 1 {
		t.Fatalf("clean NOT: %+v", *ms)
	}
	// Violating event between the positives kills the run.
	e.Epoch(10, []event.Event{event.NewStartLocation(8, 1, 10)})
	e.Epoch(11, []event.Event{event.NewStartLocation(8, 9, 11)})
	e.Epoch(12, []event.Event{event.NewStartLocation(8, 2, 12)})
	if len(*ms) != 1 {
		t.Fatalf("NOT failed to kill: %+v", *ms)
	}
}

func TestTrailingNotAbsence(t *testing.T) {
	e := NewEngine(Config{})
	ms, _ := collect(t, e, "SEQ(missing(), NOT start()) WITHIN 15")

	// Absence holds: match exactly at the window end.
	e.Epoch(10, []event.Event{event.NewMissing(7, 3, 10)})
	e.Epoch(24, nil)
	if len(*ms) != 0 {
		t.Fatalf("completed before window end: %+v", *ms)
	}
	e.Epoch(25, nil)
	if len(*ms) != 1 || (*ms)[0].At != 25 || (*ms)[0].Start != 10 {
		t.Fatalf("trailing NOT: %+v, want (10,25)", *ms)
	}

	// Re-sighting kills the pending absence.
	e.Epoch(40, []event.Event{event.NewMissing(8, 3, 40)})
	e.Epoch(45, []event.Event{event.NewStartLocation(8, 2, 45)})
	e.Epoch(60, nil)
	if len(*ms) != 1 {
		t.Fatalf("resight failed to kill: %+v", *ms)
	}

	// A clock gap past the deadline still completes the absence.
	e.Epoch(100, []event.Event{event.NewMissing(9, 3, 100)})
	e.Epoch(200, []event.Event{event.NewStartLocation(9, 2, 200)})
	if len(*ms) != 2 || (*ms)[1].At != 115 {
		t.Fatalf("gap resolution: %+v, want second match at 115", *ms)
	}
}

func TestBackrefs(t *testing.T) {
	e := NewEngine(Config{})
	// End at the same location the sequence started.
	ms, _ := collect(t, e, "SEQ(start(), end(@1)) WITHIN 50")
	e.Epoch(1, []event.Event{event.NewStartLocation(7, 4, 1)})
	e.Epoch(2, []event.Event{event.NewEndLocation(7, 5, 1, 2)}) // different loc: no
	e.Epoch(3, []event.Event{event.NewEndLocation(7, 4, 1, 3)})
	if len(*ms) != 1 || (*ms)[0].At != 3 {
		t.Fatalf("loc backref: %+v", *ms)
	}

	// Uncontained from the container bound earlier.
	ms2, _ := collect(t, e, "SEQ(contain(), uncontain(@1)) WITHIN 50")
	e.Epoch(10, []event.Event{event.NewStartContainment(7, 99, 10)})
	e.Epoch(11, []event.Event{event.NewEndContainment(7, 98, 10, 11)})
	e.Epoch(12, []event.Event{event.NewEndContainment(7, 99, 10, 12)})
	if len(*ms2) != 1 || (*ms2)[0].At != 12 {
		t.Fatalf("container backref: %+v", *ms2)
	}

	// Negated location backref: a start anywhere *else*. The epoch-21
	// repeat does not advance the run from 20 (same location) but anchors
	// a second run, so the epoch-22 event completes both.
	ms3, _ := collect(t, e, "SEQ(start(), start(!@1)) WITHIN 50")
	e.Epoch(20, []event.Event{event.NewStartLocation(31, 4, 20)})
	e.Epoch(21, []event.Event{event.NewStartLocation(31, 4, 21)})
	e.Epoch(22, []event.Event{event.NewStartLocation(31, 6, 22)})
	if len(*ms3) != 2 || (*ms3)[0].At != 22 || (*ms3)[1].At != 22 {
		t.Fatalf("negated backref: %+v", *ms3)
	}
}

func TestLevelAndCompanyAtoms(t *testing.T) {
	caseTag := epc.MustEncode(epc.Identity{Level: model.LevelCase, Company: 9, ItemRef: 1, Serial: 1})
	itemTag := epc.MustEncode(epc.Identity{Level: model.LevelItem, Company: 9, ItemRef: 1, Serial: 2})
	warmCase := epc.MustEncode(epc.Identity{Level: model.LevelCase, Company: 7, ItemRef: 1, Serial: 3})

	e := NewEngine(Config{})
	ms, _ := collect(t, e, "SEQ(start() & level(case) & company(9))")
	e.Epoch(1, []event.Event{
		event.NewStartLocation(itemTag, 1, 1),
		event.NewStartLocation(warmCase, 1, 1),
		event.NewStartLocation(caseTag, 1, 1),
		event.NewStartLocation(12345, 1, 1), // not EPC-encodable: level unknown
	})
	if len(*ms) != 1 || (*ms)[0].Object != caseTag {
		t.Fatalf("level/company filter: %+v", *ms)
	}
}

func TestTagAtomAndSingleStep(t *testing.T) {
	e := NewEngine(Config{})
	ms, _ := collect(t, e, "SEQ(tag(42))")
	e.Epoch(3, []event.Event{
		event.NewStartLocation(41, 1, 3),
		event.NewMissing(42, 1, 3),
	})
	if len(*ms) != 1 || (*ms)[0].Object != 42 || (*ms)[0].Start != 3 || (*ms)[0].At != 3 {
		t.Fatalf("single-step: %+v", *ms)
	}
}

func TestAnchorCannotSatisfyTwoSteps(t *testing.T) {
	e := NewEngine(Config{})
	// Both steps match the same event shape; one event must not match
	// both (skip-till-next-match: the anchor consumes step 1 only).
	ms, _ := collect(t, e, "SEQ(start(1), start(1)) WITHIN 10")
	e.Epoch(1, []event.Event{event.NewStartLocation(7, 1, 1)})
	if len(*ms) != 0 {
		t.Fatalf("anchor satisfied two steps: %+v", *ms)
	}
	e.Epoch(2, []event.Event{event.NewStartLocation(7, 1, 2)})
	// The epoch-2 event completes the run from 1 AND anchors a new run.
	if len(*ms) != 1 {
		t.Fatalf("want one match: %+v", *ms)
	}
	e.Epoch(3, []event.Event{event.NewStartLocation(7, 1, 3)})
	if len(*ms) != 2 {
		t.Fatalf("second run incomplete: %+v", *ms)
	}
}

func TestRunCapEviction(t *testing.T) {
	e := NewEngine(Config{MaxRuns: 2})
	var evictions []model.Epoch
	e.testEvict = func(t1, _ model.Epoch) { evictions = append(evictions, t1) }
	ms, id := collect(t, e, "SEQ(start(1), start(2)) WITHIN 100")

	// Three anchors on distinct objects: the first (oldest) run evicts.
	e.Epoch(1, []event.Event{event.NewStartLocation(7, 1, 1)})
	e.Epoch(2, []event.Event{event.NewStartLocation(8, 1, 2)})
	e.Epoch(3, []event.Event{event.NewStartLocation(9, 1, 3)})
	if len(evictions) != 1 || evictions[0] != 1 {
		t.Fatalf("evictions = %v, want [1]", evictions)
	}
	// The evicted run's object can no longer complete.
	e.Epoch(4, []event.Event{event.NewStartLocation(7, 2, 4)})
	if len(*ms) != 0 {
		t.Fatalf("evicted run completed: %+v", *ms)
	}
	// The survivors can.
	e.Epoch(5, []event.Event{event.NewStartLocation(8, 2, 5)})
	e.Epoch(6, []event.Event{event.NewStartLocation(9, 2, 6)})
	if len(*ms) != 2 {
		t.Fatalf("survivors: %+v", *ms)
	}
	_, st, _ := e.Matches(id)
	if st.Evicted != 1 {
		t.Fatalf("Evicted = %d, want 1", st.Evicted)
	}
}

func TestMatchRingBackpressure(t *testing.T) {
	e := NewEngine(Config{MaxMatches: 3})
	_, id := collect(t, e, "SEQ(missing())")
	for i := 1; i <= 5; i++ {
		e.Epoch(model.Epoch(i), []event.Event{event.NewMissing(7, 1, model.Epoch(i))})
	}
	ms, st, ok := e.Matches(id)
	if !ok {
		t.Fatal("Matches: unknown id")
	}
	if st.Matches != 5 || st.Dropped != 2 || st.Buffer != 3 {
		t.Fatalf("stats = %+v, want 5 total, 2 dropped, 3 buffered", st)
	}
	if len(ms) != 3 || ms[0].At != 3 || ms[2].At != 5 {
		t.Fatalf("ring = %+v, want oldest-dropped [3,4,5]", ms)
	}
}

func TestUnsubscribe(t *testing.T) {
	e := NewEngine(Config{})
	ms, id := collect(t, e, "SEQ(start(1), start(2)) WITHIN 100")
	e.Epoch(1, []event.Event{event.NewStartLocation(7, 1, 1)})
	e.Unsubscribe(id)
	e.Epoch(2, []event.Event{event.NewStartLocation(7, 2, 2)})
	if len(*ms) != 0 {
		t.Fatalf("match after unsubscribe: %+v", *ms)
	}
	if st := e.EngineStats(); st.Subs != 0 || st.Runs != 0 {
		t.Fatalf("state after unsubscribe: %+v", st)
	}
	if _, _, ok := e.Matches(id); ok {
		t.Fatal("Matches succeeded for removed id")
	}
}

func TestSubscriptionsListing(t *testing.T) {
	e := NewEngine(Config{})
	_, err := e.Subscribe("SEQ(missing())")
	if err != nil {
		t.Fatal(err)
	}
	id2, err := e.Subscribe("SEQ(start())")
	if err != nil {
		t.Fatal(err)
	}
	subs := e.Subscriptions()
	if len(subs) != 2 || subs[0].ID >= subs[1].ID || subs[1].ID != id2 {
		t.Fatalf("Subscriptions() = %+v", subs)
	}
	if subs[1].Pattern != "SEQ(start())" {
		t.Fatalf("pattern echo = %q", subs[1].Pattern)
	}
}

func TestDetectorsParse(t *testing.T) {
	l := Layout{ShelfFirst: 2, ShelfLast: 5, InboundFirst: 0, InboundLast: 1, Packaging: 6, ColdShelf: 2, ColdCompany: 9}
	for _, src := range []string{
		TheftPattern(40),
		MisroutePattern(l, 300),
		ColdChainPattern(l, 25),
	} {
		if err := Validate(src); err != nil {
			t.Errorf("detector %q: %v", src, err)
		}
	}
	// Cold shelf excluded from the warm anchor range.
	if got := ColdChainPattern(l, 25); !strings.Contains(got, "start(3..5)") {
		t.Errorf("cold shelf not excluded: %q", got)
	}
}

func TestTelemetryCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := NewEngine(Config{MaxRuns: 1, MaxMatches: 1})
	tel := e.Instrument(reg)
	_, err := e.Subscribe("SEQ(missing())")
	if err != nil {
		t.Fatal(err)
	}
	if _, err = e.Subscribe("SEQ(start(1), start(2)) WITHIN 10"); err != nil {
		t.Fatal(err)
	}
	e.Epoch(1, []event.Event{event.NewMissing(7, 1, 1), event.NewMissing(7, 1, 1)})
	e.Epoch(2, []event.Event{event.NewStartLocation(8, 1, 2), event.NewStartLocation(9, 1, 2)})
	if tel.Events.Value() != 4 {
		t.Errorf("Events = %d, want 4", tel.Events.Value())
	}
	if tel.Matches.Value() != 2 || tel.Dropped.Value() != 1 {
		t.Errorf("Matches/Dropped = %d/%d, want 2/1", tel.Matches.Value(), tel.Dropped.Value())
	}
	if tel.Evicted.Value() != 1 {
		t.Errorf("Evicted = %d, want 1", tel.Evicted.Value())
	}
	if tel.Subs.Value() != 2 || tel.Runs.Value() != 1 {
		t.Errorf("Subs/Runs = %d/%d, want 2/1", tel.Subs.Value(), tel.Runs.Value())
	}
}
