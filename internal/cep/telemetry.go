package cep

import "spire/internal/telemetry"

// Instruments bundles the engine's runtime-telemetry metrics. A nil
// *Instruments is the disabled mode: recording calls are skipped and the
// engine behaves identically (observation-only, like core's telemetry).
type Instruments struct {
	Events  *telemetry.Counter // events dispatched into the engine
	Matches *telemetry.Counter // matches emitted
	Dropped *telemetry.Counter // matches dropped by ring backpressure
	Evicted *telemetry.Counter // runs evicted by the per-subscription cap
	Subs    *telemetry.Gauge   // live subscriptions
	Runs    *telemetry.Gauge   // active partial-match runs
}

// NewInstruments registers the engine metrics on reg. Returns nil when
// reg is nil.
func NewInstruments(reg *telemetry.Registry) *Instruments {
	if reg == nil {
		return nil
	}
	return &Instruments{
		Events:  reg.Counter("spire_cep_events_total", "Events dispatched into the subscription engine."),
		Matches: reg.Counter("spire_cep_matches_total", "Pattern matches emitted."),
		Dropped: reg.Counter("spire_cep_matches_dropped_total", "Matches dropped by per-subscription buffer backpressure."),
		Evicted: reg.Counter("spire_cep_runs_evicted_total", "Partial-match runs evicted by the per-subscription cap."),
		Subs:    reg.Gauge("spire_cep_subscriptions", "Live subscriptions."),
		Runs:    reg.Gauge("spire_cep_runs", "Active partial-match runs."),
	}
}

// Instrument wires the engine to a telemetry registry; nil disables.
func (e *Engine) Instrument(reg *telemetry.Registry) *Instruments {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tel = NewInstruments(reg)
	if e.tel != nil {
		e.tel.Subs.Set(int64(len(e.subs)))
		e.tel.Runs.Set(int64(e.nrun))
	}
	return e.tel
}
