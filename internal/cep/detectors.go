package cep

import (
	"fmt"

	"spire/internal/model"
)

// Layout names the warehouse geography the built-in detectors reference.
// cmd binaries and experiments fill it from the simulator's accessors (or
// a real deployment's location table).
type Layout struct {
	// ShelfFirst..ShelfLast is the contiguous shelf location range.
	ShelfFirst, ShelfLast model.LocationID
	// InboundFirst..InboundLast is the contiguous arrival range (entry
	// door, receiving belt) that newly unpacked cases pass through.
	InboundFirst, InboundLast model.LocationID
	// Packaging is where outbound pallets are assembled.
	Packaging model.LocationID
	// ColdShelf is the cold-zone shelf (cold-chain detector only).
	ColdShelf model.LocationID
	// ColdCompany is the EPC company prefix of cold-chain cargo.
	ColdCompany uint32
}

// TheftPattern detects the paper's Expt 4 anomaly in the pattern
// language: a case is reported missing and then never surfaces anywhere
// for a whole window. Re-sighted cases (dropout bursts, transit gaps)
// kill the run via the trailing NOT; stolen cases never produce another
// StartLocation, so the absence completes at the window end. The window
// trades precision against detection delay: it must outlast a dropout
// burst plus a shelf-reader cycle, or transiently missing cases alarm.
func TheftPattern(window model.Epoch) string {
	return fmt.Sprintf("SEQ(missing() & level(case), NOT start()) WITHIN %d", window)
}

// MisroutePattern detects a case diverted off its outbound pallet. The
// anchor is the containment signal, which the interpretation layer gets
// right even when location inference wobbles: a case leaving its pallet
// (uncontain) and surfacing on a shelf was pulled out of an outbound
// shipment. The two legitimate uncontain sites are excluded structurally
// — arriving cases pass the inbound range first (the NOT kills those
// runs), and cases retired at the exit never produce another shelf
// sighting. Anchoring on location instead (packaging → shelf) is
// tempting but fragile: cases awaiting pallet assembly flap between
// their shelf and their packed buddies' location in the inferred stream,
// manufacturing false packaging→shelf transitions. The window only needs
// to cover the shelf readers' detection lag.
func MisroutePattern(l Layout, window model.Epoch) string {
	return fmt.Sprintf("SEQ(uncontain() & level(case), NOT start(%d..%d), start(%d..%d)) WITHIN %d",
		l.InboundFirst, l.InboundLast, l.ShelfFirst, l.ShelfLast, window)
}

// ColdChainPattern detects a cold-chain excursion: cold cargo (identified
// by its EPC company prefix) surfaces on a warm shelf and is not back in
// the cold zone within the window. Brief benign relocations are resighted
// at the cold shelf inside the window and kill the run; dwells exceeding
// the window alarm at the window end.
func ColdChainPattern(l Layout, window model.Epoch) string {
	warmFirst, warmLast := l.ShelfFirst, l.ShelfLast
	if l.ColdShelf == warmFirst {
		warmFirst++
	} else if l.ColdShelf == warmLast {
		warmLast--
	}
	return fmt.Sprintf(
		"SEQ(start(%d..%d) & level(case) & company(%d), NOT start(%d)) WITHIN %d",
		warmFirst, warmLast, l.ColdCompany, l.ColdShelf, window)
}
