package cep

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

// propBytes deals deterministic generator input for the property tests
// from a seeded PRNG, so failures reproduce from the logged seed.
func propBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestPropertyWindowSpan: no match ever spans more than WITHIN — for
// every emitted match, At - Start <= W (and At >= Start).
func TestPropertyWindowSpan(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		g := &gen{data: propBytes(seed, 256)}
		src := genPattern(g)
		p := MustParse(src)
		e := NewEngine(Config{MaxRuns: 1 << 20, MaxMatches: 1 << 20})
		id, err := e.Subscribe(src)
		if err != nil {
			t.Fatalf("seed %d: subscribe %q: %v", seed, src, err)
		}
		stream := genStream(g)
		var flush model.Epoch
		if len(stream) > 0 {
			flush = stream[len(stream)-1].At + 20
		}
		feedEngine(e, stream, flush)
		ms, _, _ := e.Matches(id)
		for _, m := range ms {
			if m.At < m.Start {
				t.Fatalf("seed %d pattern %q: match ends before it starts: %+v", seed, src, m)
			}
			if p.Within > 0 && m.At-m.Start > p.Within {
				t.Fatalf("seed %d pattern %q: match spans %d > WITHIN %d: %+v",
					seed, src, m.At-m.Start, p.Within, m)
			}
		}
	}
}

// TestPropertyVacuousNot: a trailing NOT over an empty window is
// vacuously true — an anchor followed by silence always matches at
// exactly t1+W once the clock passes the window end.
func TestPropertyVacuousNot(t *testing.T) {
	for w := model.Epoch(1); w <= 40; w += 3 {
		src := fmt.Sprintf("SEQ(missing(), NOT any()) WITHIN %d", w)
		e := NewEngine(Config{})
		id, err := e.Subscribe(src)
		if err != nil {
			t.Fatal(err)
		}
		t1 := model.Epoch(5)
		e.Epoch(t1, []event.Event{event.NewMissing(model.Tag(42), 0, t1)})
		e.Epoch(t1+w+7, nil) // silence past the window end
		got, _, _ := e.Matches(id)
		if len(got) != 1 {
			t.Fatalf("WITHIN %d: want 1 vacuous match, got %+v", w, got)
		}
		if got[0].Start != t1 || got[0].At != t1+w {
			t.Fatalf("WITHIN %d: want match [%d,%d], got %+v", w, t1, t1+w, got[0])
		}
	}
}

// TestPropertyEvictionOldestFirst: run-cap eviction never drops a run
// younger than the oldest retained one. The testEvict hook reports the
// evicted run's anchor epoch and the anchor of the oldest survivor.
func TestPropertyEvictionOldestFirst(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		g := &gen{data: propBytes(seed+1000, 256)}
		src := genPattern(g)
		e := NewEngine(Config{MaxRuns: 2 + g.n(4), MaxMatches: 1 << 10})
		if _, err := e.Subscribe(src); err != nil {
			t.Fatalf("seed %d: subscribe %q: %v", seed, src, err)
		}
		evictions := 0
		e.testEvict = func(evicted, oldestRetained model.Epoch) {
			evictions++
			if evicted > oldestRetained {
				t.Fatalf("seed %d pattern %q: evicted run anchored at %d but retained older run anchored at %d",
					seed, src, evicted, oldestRetained)
			}
		}
		feedEngine(e, genStream(g), 0)
	}
}

// TestPropertyBoundedChurn: engine state stays bounded under a
// 10^5-subscription subscribe/unsubscribe churn with live traffic. A
// concurrent reader hammers the stats and match accessors so the run
// also exercises lock coverage under -race.
func TestPropertyBoundedChurn(t *testing.T) {
	const (
		total = 100_000
		live  = 64 // subscriptions kept live at any moment
	)
	e := NewEngine(Config{MaxRuns: 8, MaxMatches: 16})
	rng := rand.New(rand.NewSource(7))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := e.EngineStats()
			if st.Runs < 0 || st.Heap < 0 {
				panic("negative stats")
			}
			for _, s := range e.Subscriptions() {
				e.Matches(s.ID)
			}
		}
	}()

	objs, _ := genTags()
	var ids []int
	now := model.Epoch(1)
	patterns := []string{
		"SEQ(missing(), NOT start()) WITHIN 5",
		"SEQ(start(0..4), end(@1)) WITHIN 7",
		"SEQ(any(), NOT any()) WITHIN 3",
		"SEQ(start() & level(case), start(1..3)) WITHIN 9",
	}
	for i := 0; i < total; i++ {
		id, err := e.Subscribe(patterns[i%len(patterns)])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if len(ids) > live {
			k := rng.Intn(len(ids))
			e.Unsubscribe(ids[k])
			ids[k] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
		}
		if i%4 == 0 {
			now++
			obj := objs[rng.Intn(len(objs))]
			e.Epoch(now, []event.Event{
				event.NewMissing(obj, model.LocationID(rng.Intn(5)), now),
				event.NewStartLocation(obj, model.LocationID(rng.Intn(5)), now),
			})
		}
	}
	close(stop)
	wg.Wait()

	st := e.EngineStats()
	if st.Subs != live {
		t.Fatalf("want %d live subscriptions after churn, got %d", live, st.Subs)
	}
	// Every live subscription holds at most MaxRuns runs; the heap may
	// additionally hold lazily-dead entries not yet popped, but it can
	// never exceed the total number of runs ever pushed and still pending
	// — bound it generously by live*MaxRuns plus the dead backlog cap.
	if st.Runs > live*8 {
		t.Fatalf("runs unbounded: %d live subs cap 8 but %d runs", live, st.Runs)
	}
	if st.Heap > st.Runs+live*8*2 {
		t.Fatalf("heap retains too many dead entries: runs=%d heap=%d", st.Runs, st.Heap)
	}
}
