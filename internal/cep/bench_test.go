package cep

import (
	"fmt"
	"testing"

	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/model"
)

// benchTags builds a deterministic case population for the dispatch
// benchmarks.
func benchTags(n int) []model.Tag {
	seq, err := epc.NewSequencer(7)
	if err != nil {
		panic(err)
	}
	tags := make([]model.Tag, n)
	for i := range tags {
		g, err := seq.Next(model.LevelCase)
		if err != nil {
			panic(err)
		}
		tags[i] = g
	}
	return tags
}

// benchStream synthesizes an epoch-batched stream shaped like the
// pipeline's output: location churn across a shelf range, containment
// open/close pairs, and periodic missing reports over a rotating case
// population. Deterministic, no rng.
func benchStream(epochs int, tags []model.Tag) (batches [][]event.Event, times []model.Epoch, total int) {
	for e := 1; e <= epochs; e++ {
		now := model.Epoch(e)
		var evs []event.Event
		for k := 0; k < 4; k++ {
			g := tags[(e*4+k)%len(tags)]
			loc := model.LocationID(2 + (e+k)%8)
			evs = append(evs,
				event.NewEndLocation(g, loc, now-3, now),
				event.NewStartLocation(g, loc+1, now),
			)
		}
		if e%3 == 0 {
			g := tags[(e*7)%len(tags)]
			evs = append(evs, event.NewMissing(g, model.LocationID(2+e%8), now))
		}
		if e%5 == 0 {
			g := tags[(e*11)%len(tags)]
			c := tags[(e*11+1)%len(tags)]
			evs = append(evs,
				event.NewStartContainment(g, c, now),
				event.NewEndContainment(g, c, now-1, now),
			)
		}
		batches = append(batches, evs)
		times = append(times, now)
		total += len(evs)
	}
	return batches, times, total
}

// benchDispatch drives the engine over the synthetic stream with the
// given per-object alerting load, reporting ns/event. The clock shifts
// each full pass so windows keep expiring and the measurement includes
// steady-state run turnover.
func benchDispatch(b *testing.B, subs int) {
	tags := benchTags(512)
	e := NewEngine(Config{})
	for i := 0; i < subs; i++ {
		g := tags[i%len(tags)]
		var src string
		if i%2 == 0 {
			src = fmt.Sprintf("SEQ(missing() & tag(%d), NOT start()) WITHIN 60", g)
		} else {
			src = fmt.Sprintf("SEQ(start() & tag(%d) & level(case), NOT end()) WITHIN 80", g)
		}
		if _, err := e.Subscribe(src); err != nil {
			b.Fatal(err)
		}
	}
	batches, times, _ := benchStream(256, tags)
	span := times[len(times)-1] + 1
	var offset model.Epoch
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % len(batches)
		e.Epoch(times[idx]+offset, batches[idx])
		events += int64(len(batches[idx]))
		if idx == len(batches)-1 {
			offset += span
		}
	}
	b.StopTimer()
	if events > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(events), "ns/event")
	}
}

func BenchmarkCEPDispatchIdle(b *testing.B)    { benchDispatch(b, 0) }
func BenchmarkCEPDispatch1kSubs(b *testing.B)  { benchDispatch(b, 1_000) }
func BenchmarkCEPDispatch10kSubs(b *testing.B) { benchDispatch(b, 10_000) }

// The 100k row exists because of the per-(kind, tag) anchor index: the
// subscriptions here all name a tag in their first step, so dispatch
// probes the tag map and visits only the event's own watchers instead
// of rejecting every other subscription one by one. Cost per event
// should track the watchers-per-tag ratio (subs / population), not the
// raw subscription count.
func BenchmarkCEPDispatch100kSubs(b *testing.B) { benchDispatch(b, 100_000) }
