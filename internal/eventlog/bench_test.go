package eventlog

import (
	"testing"

	"spire/internal/event"
)

func BenchmarkAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	evs := sampleEvents(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(evs...); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(event.StreamSize(evs)) + int64(len(evs)*headerSize))
}

func BenchmarkReplay(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := l.Append(sampleEvents(64)...); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := Replay(dir, func(event.Event) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 200*64 {
			b.Fatalf("replayed %d", n)
		}
	}
}
