package eventlog

import (
	"os"
	"path/filepath"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
)

func sampleEvents(n int) []event.Event {
	out := make([]event.Event, 0, n)
	for i := 0; i < n; i++ {
		obj := model.Tag(i + 1)
		switch i % 3 {
		case 0:
			out = append(out, event.NewStartLocation(obj, model.LocationID(i%4), model.Epoch(i)))
		case 1:
			out = append(out, event.NewEndLocation(obj, model.LocationID(i%4), model.Epoch(i), model.Epoch(i+5)))
		default:
			out = append(out, event.NewStartContainment(obj, obj+1000, model.Epoch(i)))
		}
	}
	return out
}

func replayAll(t *testing.T, dir string) []event.Event {
	t.Helper()
	var got []event.Event
	if err := Replay(dir, func(e event.Event) error {
		got = append(got, e)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleEvents(100)
	if err := l.Append(want...); err != nil {
		t.Fatal(err)
	}
	if l.Appended() != 100 {
		t.Errorf("Appended = %d, want 100", l.Appended())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxSegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(50)...); err != nil {
		t.Fatal(err)
	}
	if l.SegmentIndex() == 0 {
		t.Error("tiny segment cap must have rotated")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	if got := replayAll(t, dir); len(got) != 50 {
		t.Fatalf("replayed %d events across segments, want 50", len(got))
	}
}

func TestReopenAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := sampleEvents(20)
	if err := l.Append(evs[:10]...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(evs[10:]...); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 20 {
		t.Fatalf("replayed %d, want 20", len(got))
	}
	for i := range evs {
		if got[i] != evs[i] {
			t.Errorf("event %d mismatch after reopen", i)
		}
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	evs := sampleEvents(10)
	if err := l.Append(evs...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the segment.
	path := filepath.Join(dir, segName(0))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	// Replay silently drops the torn record.
	if got := replayAll(t, dir); len(got) != 9 {
		t.Fatalf("replayed %d after tear, want 9", len(got))
	}
	// Reopen truncates the tear and appending resumes cleanly.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(evs[9]); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir); len(got) != 10 {
		t.Fatalf("replayed %d after recovery, want 10", len(got))
	}
}

func TestBitrotDetected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxSegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(30)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the FIRST segment (not the tail): must be
	// reported, not silently dropped.
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, func(event.Event) error { return nil }); err == nil {
		t.Fatal("mid-log corruption must fail replay")
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-log corruption must fail open")
	}
}

func TestSyncEvery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(10)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir); len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
}

func TestClosedLogRejectsAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(1)...); err == nil {
		t.Fatal("append to a closed log must fail")
	}
	if err := l.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := l.Sync(); err != nil {
		t.Fatal("sync on closed log must be a no-op")
	}
}

func TestInvalidEventRejected(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(event.Event{Kind: event.StartLocation}); err == nil {
		t.Fatal("invalid event must be rejected before hitting disk")
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(5)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err = Replay(dir, func(event.Event) error {
		calls++
		if calls == 3 {
			return os.ErrClosed
		}
		return nil
	})
	if err == nil {
		t.Fatal("callback error must propagate")
	}
	if calls != 3 {
		t.Fatalf("callback ran %d times, want 3", calls)
	}
}

func TestOpenEmptyDirCreatesSegment(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "fresh")
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.SegmentIndex() != 0 || l.Dir() != dir {
		t.Errorf("fresh log segment=%d dir=%q", l.SegmentIndex(), l.Dir())
	}
	if got := replayAll(t, dir); len(got) != 0 {
		t.Errorf("fresh log replayed %d events", len(got))
	}
}
