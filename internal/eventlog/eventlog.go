// Package eventlog persists SPIRE's compressed output stream durably, in
// the style of a write-ahead log: append-only segment files with CRC-32C
// framing, size-based rotation, and crash recovery that tolerates a torn
// final record.
//
// The paper's substrate feeds downstream warehouses and query processors;
// in a production deployment the event stream must survive process
// restarts between the substrate and those consumers. A Log provides
// that: Append frames each event, Sync makes it durable, and Replay
// rebuilds the stream (for example into a query.Store) after a crash.
//
// On-disk layout: <dir>/events-<n>.seg files numbered from 0. Each record
// is
//
//	u16 length | u32 crc32c(payload) | payload (event wire format)
//
// Recovery scans all segments in order, verifying every checksum. A
// truncated or corrupt record at the very tail of the *last* segment is
// treated as a torn write: the segment is truncated there and appending
// resumes. Corruption anywhere else is an error — the log is damaged, not
// merely torn.
package eventlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"spire/internal/event"
)

// ErrCorrupt reports checksum or framing damage before the tail of the
// last segment.
var ErrCorrupt = errors.New("eventlog: corrupt record")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	headerSize = 2 + 4 // length + crc

	// DefaultMaxSegmentBytes rotates segments at 64 MiB.
	DefaultMaxSegmentBytes = 64 << 20
)

// Options tunes a Log.
type Options struct {
	// MaxSegmentBytes rotates to a fresh segment when the current one
	// exceeds this size. Defaults to DefaultMaxSegmentBytes.
	MaxSegmentBytes int64
	// SyncEvery issues an fsync after this many appended events; zero
	// leaves durability entirely to explicit Sync/Close calls.
	SyncEvery int
}

// Log is an append-only event log. It is not safe for concurrent use.
type Log struct {
	dir      string
	opts     Options
	seg      *os.File
	segIndex int
	segSize  int64
	appended int64
	unsynced int
	buf      []byte
}

func segName(i int) string { return fmt.Sprintf("events-%08d.seg", i) }

// segments lists the segment indices present in dir, ascending.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, e := range entries {
		var i int
		if n, _ := fmt.Sscanf(e.Name(), "events-%08d.seg", &i); n == 1 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Open opens (creating if needed) the log in dir, recovering from a torn
// tail write if one is found.
func Open(dir string, opts Options) (*Log, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	if len(segs) == 0 {
		if err := l.rotate(0); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Verify all but the last segment fully; recover the last.
	for _, i := range segs[:len(segs)-1] {
		if _, err := scanSegment(filepath.Join(dir, segName(i)), false, nil); err != nil {
			return nil, fmt.Errorf("segment %d: %w", i, err)
		}
	}
	last := segs[len(segs)-1]
	valid, err := scanSegment(filepath.Join(dir, segName(last)), true, nil)
	if err != nil {
		return nil, fmt.Errorf("segment %d: %w", last, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.seg = f
	l.segIndex = last
	l.segSize = valid
	return l, nil
}

// rotate closes the current segment and opens segment i.
func (l *Log) rotate(i int) error {
	if l.seg != nil {
		if err := l.seg.Sync(); err != nil {
			return err
		}
		if err := l.seg.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(i)), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.seg = f
	l.segIndex = i
	l.segSize = 0
	return nil
}

// Append frames and writes events to the log.
func (l *Log) Append(events ...event.Event) error {
	if l.seg == nil {
		return errors.New("eventlog: log is closed")
	}
	for _, e := range events {
		payload, err := event.Append(l.buf[:0], e)
		if err != nil {
			return err
		}
		l.buf = payload
		var hdr [headerSize]byte
		binary.BigEndian.PutUint16(hdr[0:2], uint16(len(payload)))
		binary.BigEndian.PutUint32(hdr[2:6], crc32.Checksum(payload, castagnoli))
		if _, err := l.seg.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := l.seg.Write(payload); err != nil {
			return err
		}
		l.segSize += int64(headerSize + len(payload))
		l.appended++
		l.unsynced++
		if l.opts.SyncEvery > 0 && l.unsynced >= l.opts.SyncEvery {
			if err := l.Sync(); err != nil {
				return err
			}
		}
		if l.segSize >= l.opts.MaxSegmentBytes {
			if err := l.rotate(l.segIndex + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	if l.seg == nil {
		return nil
	}
	l.unsynced = 0
	return l.seg.Sync()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if l.seg == nil {
		return nil
	}
	if err := l.seg.Sync(); err != nil {
		return err
	}
	err := l.seg.Close()
	l.seg = nil
	return err
}

// Appended returns the number of events appended by this Log instance.
func (l *Log) Appended() int64 { return l.appended }

// SegmentIndex returns the index of the segment currently being written.
func (l *Log) SegmentIndex() int { return l.segIndex }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Replay streams every event in the log, in order, to fn. A torn tail in
// the last segment is skipped silently; any other damage returns
// ErrCorrupt.
func Replay(dir string, fn func(event.Event) error) error {
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	for k, i := range segs {
		tail := k == len(segs)-1
		if _, err := scanSegment(filepath.Join(dir, segName(i)), tail, fn); err != nil {
			return fmt.Errorf("segment %d: %w", i, err)
		}
	}
	return nil
}

// scanSegment walks one segment file, verifying framing and checksums and
// invoking fn per event. With tolerateTail set, a short or corrupt record
// at the end is not an error; the returned offset is the end of the valid
// prefix either way.
func scanSegment(path string, tolerateTail bool, fn func(event.Event) error) (int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var off int64
	for int(off) < len(data) {
		rest := data[off:]
		bad := func() (int64, error) {
			if tolerateTail {
				return off, nil
			}
			return off, fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		if len(rest) < headerSize {
			return bad()
		}
		n := int(binary.BigEndian.Uint16(rest[0:2]))
		want := binary.BigEndian.Uint32(rest[2:6])
		if n == 0 || len(rest) < headerSize+n {
			return bad()
		}
		payload := rest[headerSize : headerSize+n]
		if crc32.Checksum(payload, castagnoli) != want {
			return bad()
		}
		e, used, err := event.Decode(payload)
		if err != nil || used != n {
			if tolerateTail {
				return off, nil
			}
			return off, fmt.Errorf("%w at offset %d: %v", ErrCorrupt, off, err)
		}
		if fn != nil {
			if err := fn(e); err != nil {
				return off, err
			}
		}
		off += int64(headerSize + n)
	}
	return off, nil
}
