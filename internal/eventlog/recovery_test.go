package eventlog

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"spire/internal/event"
)

// TestTornHeaderRecovered: a tear inside the record header (not just the
// payload) is also recovered.
func TestTornHeaderRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(4)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Append 3 bytes of a half-written header.
	if err := os.WriteFile(path, append(data, 0x00, 0x10, 0xAB), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir); len(got) != 4 {
		t.Fatalf("replayed %d, want 4", len(got))
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.Append(sampleEvents(1)...); err != nil {
		t.Fatal(err)
	}
}

// TestZeroLengthRecordTreatedAsTear: an all-zero tail (preallocated or
// zero-filled blocks after a crash) reads as a torn write.
func TestZeroLengthRecordTreatedAsTear(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(2)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segName(0))
	data, _ := os.ReadFile(path)
	zeros := make([]byte, 32)
	if err := os.WriteFile(path, append(data, zeros...), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := replayAll(t, dir); len(got) != 2 {
		t.Fatalf("replayed %d, want 2", len(got))
	}
}

// TestCorruptLengthMidSegment: a record length pointing past valid data
// mid-log is corruption, not a tear.
func TestCorruptLengthMidSegment(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{MaxSegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(sampleEvents(20)...); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the length field of the first record of segment 0.
	path := filepath.Join(dir, segName(0))
	data, _ := os.ReadFile(path)
	binary.BigEndian.PutUint16(data[0:2], 9999)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, func(event.Event) error { return nil }); err == nil {
		t.Fatal("corrupt length mid-log must fail replay")
	}
}

// TestOpenOnFileError: opening a log rooted at a file path fails cleanly.
func TestOpenOnFileError(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, Options{}); err == nil {
		t.Fatal("Open on a regular file must fail")
	}
	if err := Replay(file, nil); err == nil {
		t.Fatal("Replay on a regular file must fail")
	}
}
