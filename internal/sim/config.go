// Package sim emulates deployments of RFID readers in a large warehouse —
// the synthetic-workload generator of the paper's evaluation (Section VI,
// Table II).
//
// Pallets arrive at an entry door, are unpacked, and their cases are
// scanned one at a time on a receiving belt (a special, confirming
// reader), shelved for a configurable period, repackaged onto new pallets,
// re-scanned on a shipping belt (another confirming reader), and finally
// read at the exit door before leaving the world. Readers interrogate at
// configurable frequencies with configurable per-interrogation read rates;
// optional theft events remove shelved cases without a trace.
//
// The simulator maintains the ground-truth model.World alongside the
// generated raw readings, so experiments can score inference output and
// build ground-truth event streams.
package sim

import (
	"fmt"

	"spire/internal/model"
)

// Config holds the workload parameters of Table II plus the structural
// details of the warehouse.
type Config struct {
	Seed int64

	// Duration is the total simulation length in epochs (1 epoch = 1 s).
	Duration model.Epoch

	// PalletInterval is the time between pallet injections (the paper
	// sweeps 1/4 s to 600 s; sub-second injection is expressed by
	// PalletsPerArrival > 1).
	PalletInterval model.Epoch
	// PalletsPerArrival injects several pallets per arrival epoch to
	// model sub-second injection rates. Default 1.
	PalletsPerArrival int

	// CasesMin..CasesMax cases ride on each arriving pallet (paper: 5-8).
	CasesMin, CasesMax int
	// ItemsPerCase items are packed in every case (paper: 20).
	ItemsPerCase int

	// ReadRate is the per-interrogation probability that an in-range tag
	// responds (paper sweeps 0.5-1.0).
	ReadRate float64

	// NonShelfInterrogations per epoch for entry/belt/packaging/exit
	// readers (the paper's fixed 2 interrogations per second).
	NonShelfInterrogations int
	// ShelfPeriod is the shelf readers' period in epochs (paper sweeps
	// 1 s to 1 min); shelf readers interrogate once per active epoch.
	ShelfPeriod model.Epoch

	// NumShelves is the number of distinct shelf locations; co-located
	// cases on one shelf are the main source of containment noise.
	NumShelves int
	// ShelfTime is the mean shelving duration (paper: ~1 h); actual stays
	// are uniform in [0.5, 1.5] × ShelfTime.
	ShelfTime model.Epoch

	// Dwell times for the transitional stages, in epochs.
	EntryDwell, BeltDwell, PackDwell, ExitDwell model.Epoch

	// TheftInterval, when positive, steals one random shelved case (with
	// its contents) every TheftInterval epochs — the anomaly workload of
	// Expt 4. Zero disables theft.
	TheftInterval model.Epoch

	// ItemDropRate is the per-case probability that one item falls off
	// while the case rides the receiving belt — the paper's running
	// example has exactly this (item 6 falls off case 3 on the belt and
	// stays there). Dropped items remain at the belt location,
	// uncontained, until swept to a shelf by the next passing case's
	// shelving trip. Zero disables drops.
	ItemDropRate float64

	// MisrouteInterval, when positive, diverts one case off a completing
	// outbound pallet roughly every MisrouteInterval epochs: the case is
	// pulled back onto a random shelf while its pallet ships without it.
	// Zero disables misroutes. Ground truth lands in Misroutes().
	MisrouteInterval model.Epoch

	// ColdCasePeriod, when positive, makes every ColdCasePeriod-th
	// injected case cold-chain cargo: tagged under the ColdCompany EPC
	// prefix and always shelved on the cold shelf (the first shelf).
	// Requires NumShelves >= 2 so warm shelves exist. Zero disables cold
	// cargo entirely.
	ColdCasePeriod int

	// ExcursionInterval, when positive, moves a cold case from the cold
	// shelf to a random warm shelf every ExcursionInterval epochs, holding
	// it there for ExcursionDwell epochs before wheeling it back — a
	// cold-chain excursion. Dwells longer than a detector's window are the
	// true positives of the cold-chain workload; ground truth lands in
	// Excursions(). Requires ColdCasePeriod > 0.
	ExcursionInterval, ExcursionDwell model.Epoch

	// ColdShuffleInterval, when positive, briefly relocates a cold case to
	// a warm shelf for ColdShuffleDwell epochs — benign handling churn that
	// pressures detector precision (a window shorter than the dwell plus a
	// shelf-reader period false-alarms on every shuffle). Ground truth
	// lands in ColdShuffles(). Requires ColdCasePeriod > 0.
	ColdShuffleInterval, ColdShuffleDwell model.Epoch
}

// DefaultConfig mirrors the accuracy-experiment setup of Section VI-B:
// 6 pallets/hour, 5 cases per pallet, 20 items per case, 1-hour shelving,
// read rate 0.85, shelf readers once a minute, 3-hour run.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Duration:               3 * 3600,
		PalletInterval:         600,
		PalletsPerArrival:      1,
		CasesMin:               5,
		CasesMax:               5,
		ItemsPerCase:           20,
		ReadRate:               0.85,
		NonShelfInterrogations: 2,
		ShelfPeriod:            60,
		NumShelves:             4,
		ShelfTime:              3600,
		EntryDwell:             4,
		BeltDwell:              3,
		PackDwell:              5,
		ExitDwell:              3,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Duration < 1 {
		return fmt.Errorf("sim: Duration %d must be positive", c.Duration)
	}
	if c.PalletInterval < 1 {
		return fmt.Errorf("sim: PalletInterval %d must be positive", c.PalletInterval)
	}
	if c.PalletsPerArrival < 1 {
		return fmt.Errorf("sim: PalletsPerArrival %d must be positive", c.PalletsPerArrival)
	}
	if c.CasesMin < 1 || c.CasesMax < c.CasesMin {
		return fmt.Errorf("sim: cases range [%d,%d] invalid", c.CasesMin, c.CasesMax)
	}
	if c.ItemsPerCase < 0 {
		return fmt.Errorf("sim: ItemsPerCase %d must be >= 0", c.ItemsPerCase)
	}
	if c.ReadRate < 0 || c.ReadRate > 1 {
		return fmt.Errorf("sim: ReadRate %v out of [0,1]", c.ReadRate)
	}
	if c.NonShelfInterrogations < 1 {
		return fmt.Errorf("sim: NonShelfInterrogations %d must be positive", c.NonShelfInterrogations)
	}
	if c.ShelfPeriod < 1 {
		return fmt.Errorf("sim: ShelfPeriod %d must be positive", c.ShelfPeriod)
	}
	if c.NumShelves < 1 {
		return fmt.Errorf("sim: NumShelves %d must be positive", c.NumShelves)
	}
	if c.ShelfTime < 1 {
		return fmt.Errorf("sim: ShelfTime %d must be positive", c.ShelfTime)
	}
	if c.EntryDwell < 1 || c.BeltDwell < 1 || c.PackDwell < 1 || c.ExitDwell < 1 {
		return fmt.Errorf("sim: dwell times must be positive")
	}
	if c.TheftInterval < 0 {
		return fmt.Errorf("sim: TheftInterval %d must be >= 0", c.TheftInterval)
	}
	if c.ItemDropRate < 0 || c.ItemDropRate > 1 {
		return fmt.Errorf("sim: ItemDropRate %v out of [0,1]", c.ItemDropRate)
	}
	if c.MisrouteInterval < 0 {
		return fmt.Errorf("sim: MisrouteInterval %d must be >= 0", c.MisrouteInterval)
	}
	if c.ColdCasePeriod < 0 {
		return fmt.Errorf("sim: ColdCasePeriod %d must be >= 0", c.ColdCasePeriod)
	}
	if c.ColdCasePeriod > 0 && c.NumShelves < 2 {
		return fmt.Errorf("sim: cold cargo needs NumShelves >= 2 (cold shelf plus warm), got %d", c.NumShelves)
	}
	for _, w := range []struct {
		interval, dwell model.Epoch
		name            string
	}{
		{c.ExcursionInterval, c.ExcursionDwell, "Excursion"},
		{c.ColdShuffleInterval, c.ColdShuffleDwell, "ColdShuffle"},
	} {
		if w.interval < 0 {
			return fmt.Errorf("sim: %sInterval %d must be >= 0", w.name, w.interval)
		}
		if w.interval > 0 {
			if c.ColdCasePeriod == 0 {
				return fmt.Errorf("sim: %sInterval needs ColdCasePeriod > 0", w.name)
			}
			if w.dwell < 1 {
				return fmt.Errorf("sim: %sDwell %d must be positive when %sInterval is set", w.name, w.dwell, w.name)
			}
		}
	}
	return nil
}

// Reader group identifiers (the paper's groups 1-6).
const (
	ReaderEntry model.ReaderID = iota + 1
	ReaderBeltIn
	ReaderPackaging
	ReaderBeltOut
	ReaderExit
	readerShelfBase // shelf readers are readerShelfBase+i
)

// ColdCompany is the EPC company prefix cold-chain cargo is tagged
// under; ordinary cargo uses a different prefix, so detectors can select
// cold cases with a company() predicate alone.
const ColdCompany uint32 = 9

// Theft records an anomaly event: the case stolen and when.
type Theft struct {
	Case model.Tag
	At   model.Epoch
}

// Misroute records a case diverted off its outbound pallet back onto a
// shelf while the pallet shipped without it.
type Misroute struct {
	Case   model.Tag
	Pallet model.Tag
	At     model.Epoch
	// Shelf is where the diverted case ended up.
	Shelf model.LocationID
}

// Excursion records a cold-chain violation: a cold case held on a warm
// shelf from At until Return.
type Excursion struct {
	Case   model.Tag
	At     model.Epoch
	Return model.Epoch
	Shelf  model.LocationID
}

// ColdShuffle records a benign brief relocation of a cold case — not an
// anomaly, but the precision pressure of the cold-chain workload.
type ColdShuffle struct {
	Case   model.Tag
	At     model.Epoch
	Return model.Epoch
	Shelf  model.LocationID
}

// Drop records an item falling off its case on the receiving belt.
type Drop struct {
	Item model.Tag
	Case model.Tag
	At   model.Epoch
}
