package sim

import (
	"fmt"
	"io"

	"spire/internal/model"
)

// PartitionZones splits the warehouse into n zones — contiguous runs of
// the location table, balanced by location count — and returns each
// zone's readers. Location order follows the physical flow (entry door,
// receiving belt, shelves, packaging area, shipping belt, exit door), so
// contiguous runs give each zone a connected stretch of the warehouse
// and objects hand off between adjacent zones as they progress.
//
// Every reader lands in exactly one zone, and every zone gets at least
// one reader.
func (s *Simulator) PartitionZones(n int) ([][]model.Reader, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: cannot partition into %d zones", n)
	}
	if n > len(s.locs) {
		return nil, fmt.Errorf("sim: %d zones for %d locations", n, len(s.locs))
	}
	zoneOf := make(map[model.LocationID]int, len(s.locs))
	for i, l := range s.locs {
		zoneOf[l.ID] = i * n / len(s.locs)
	}
	zones := make([][]model.Reader, n)
	for _, r := range s.readers {
		z, ok := zoneOf[r.Location]
		if !ok {
			return nil, fmt.Errorf("sim: reader %d at unknown location %d", r.ID, r.Location)
		}
		zones[z] = append(zones[z], r)
	}
	for z, rs := range zones {
		if len(rs) == 0 {
			return nil, fmt.Errorf("sim: zone %d has no readers", z)
		}
	}
	return zones, nil
}

// ZoneOfReaders inverts a partition: reader ID → zone index.
func ZoneOfReaders(zones [][]model.Reader) map[model.ReaderID]int {
	m := make(map[model.ReaderID]int)
	for z, rs := range zones {
		for _, r := range rs {
			m[r.ID] = z
		}
	}
	return m
}

// ZoneStream adapts a simulator into one zone's observation source: each
// Next steps the (deterministic, full-warehouse) simulation and returns
// only the zone's readers' readings. Every zone worker runs its own
// simulator instance from the same seed, so the zones collectively see
// exactly the readings a single deployment would — without any process
// having to fan readings out.
type ZoneStream struct {
	s      *Simulator
	zoneOf map[model.ReaderID]int
	zone   int
}

// NewZoneStream wraps s as zone's view of the partition.
func NewZoneStream(s *Simulator, zoneOf map[model.ReaderID]int, zone int) *ZoneStream {
	return &ZoneStream{s: s, zoneOf: zoneOf, zone: zone}
}

// Next returns the zone's next epoch observation, or io.EOF when the
// simulation is over. Epochs with no readings in the zone still yield an
// (empty) observation — the substrate needs every epoch.
func (z *ZoneStream) Next() (*model.Observation, error) {
	if z.s.Done() {
		return nil, io.EOF
	}
	o, err := z.s.Step()
	if err != nil {
		return nil, err
	}
	filtered := model.NewObservation(o.Time)
	for r, tags := range o.ByReader {
		if z.zoneOf[r] == z.zone {
			filtered.ByReader[r] = tags
		}
	}
	return filtered, nil
}

// SplitObservation splits one epoch's observation into per-zone
// observations according to the reader→zone map. Every zone gets an
// observation for the epoch, possibly with no readings — a zone's
// substrate must see every epoch to keep its inference schedule aligned.
func SplitObservation(o *model.Observation, zoneOf map[model.ReaderID]int, n int) []*model.Observation {
	out := make([]*model.Observation, n)
	for z := range out {
		out[z] = model.NewObservation(o.Time)
	}
	for r, tags := range o.ByReader {
		if z, ok := zoneOf[r]; ok {
			out[z].ByReader[r] = tags
		}
	}
	return out
}
