package sim

import (
	"slices"
	"testing"

	"spire/internal/model"
)

// TestStepBatchMatchesStep runs two same-seed simulators, one through
// Step and one through StepBatch, and demands identical traces: the
// batched entry point must consume the RNG in exactly the same order, so
// the two can never drift. Ground-truth side effects (departures, world
// clock) must agree too.
func TestStepBatchMatchesStep(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Duration = 200
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var batch model.Batch
	var want model.Batch
	for !a.Done() {
		o, err := a.Step()
		if err != nil {
			t.Fatal(err)
		}
		if b.Done() {
			t.Fatal("batched simulator finished early")
		}
		if err := b.StepBatch(&batch); err != nil {
			t.Fatal(err)
		}
		if err := batch.Validate(); err != nil {
			t.Fatalf("epoch %d: %v", batch.Time, err)
		}
		want.FromObservation(o)
		if batch.Time != want.Time ||
			!slices.Equal(batch.Groups, want.Groups) ||
			!slices.Equal(batch.Tags, want.Tags) {
			t.Fatalf("epoch %d: batched observation diverged from Step", o.Time)
		}
		if !slices.Equal(a.Departed(), b.Departed()) {
			t.Fatalf("epoch %d: departures diverged: %v vs %v", o.Time, a.Departed(), b.Departed())
		}
	}
	if !b.Done() {
		t.Fatal("batched simulator did not finish with the reference")
	}
}
