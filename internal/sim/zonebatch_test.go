package sim

import (
	"errors"
	"io"
	"testing"

	"spire/internal/model"
)

func zoneBatchTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Seed = 17
	cfg.Duration = 400
	cfg.PalletInterval = 60
	cfg.NumShelves = 6
	cfg.ReadRate = 0.9
	return cfg
}

// readingsByReader flattens a batch into reader→tags (copied).
func readingsByReader(dst map[model.ReaderID][]model.Tag, b *model.Batch) {
	for i, g := range b.Groups {
		dst[g.Reader] = append(dst[g.Reader][:0], b.GroupTags(i)...)
	}
}

// TestZoneBatchUnionMatchesFullFeed pins the zone-batch determinism
// contract: for any partition width, the union of the zones' batches at
// each epoch equals the single-zone (full deployment) zone-batch trace
// from the same seed. This is what lets every zone worker simulate
// independently yet collectively cover exactly the full deployment's
// readings.
func TestZoneBatchUnionMatchesFullFeed(t *testing.T) {
	cfg := zoneBatchTestConfig()

	full, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fullStreams, err := full.PartitionZonesBatch(1)
	if err != nil {
		t.Fatal(err)
	}

	for _, nz := range []int{2, 4} {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		streams, err := s.PartitionZonesBatch(nz)
		if err != nil {
			t.Fatal(err)
		}

		want := make(map[model.ReaderID][]model.Tag)
		got := make(map[model.ReaderID][]model.Tag)
		epochs := 0
		for {
			fb, err := fullStreams[0].NextBatch()
			if errors.Is(err, io.EOF) {
				for _, zs := range streams {
					if _, err := zs.NextBatch(); !errors.Is(err, io.EOF) {
						t.Fatalf("nz=%d: zone stream not at EOF with full stream", nz)
					}
				}
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			clear(want)
			readingsByReader(want, fb)

			clear(got)
			for z, zs := range streams {
				zb, err := zs.NextBatch()
				if err != nil {
					t.Fatalf("nz=%d zone %d: %v", nz, z, err)
				}
				if zb.Time != fb.Time {
					t.Fatalf("nz=%d zone %d: epoch %d, want %d", nz, z, zb.Time, fb.Time)
				}
				readingsByReader(got, zb)
			}

			if len(got) != len(want) {
				t.Fatalf("nz=%d epoch %d: %d readers with readings, want %d", nz, fb.Time, len(got), len(want))
			}
			for r, tags := range want {
				gt, ok := got[r]
				if !ok || !tagsEqual(gt, tags) {
					t.Fatalf("nz=%d epoch %d reader %d: readings diverge (got %v, want %v)", nz, fb.Time, r, gt, tags)
				}
			}
			epochs++
		}
		if epochs != int(cfg.Duration) {
			t.Fatalf("nz=%d: drove %d epochs, want %d", nz, epochs, cfg.Duration)
		}
		// Restart the full trace for the next partition width.
		full, err = New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if fullStreams, err = full.PartitionZonesBatch(1); err != nil {
			t.Fatal(err)
		}
	}
}

func tagsEqual(a, b []model.Tag) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestZoneBatchLockstepError pins the lockstep contract: a stream that
// falls behind the world clock gets an error, not silently wrong
// readings.
func TestZoneBatchLockstepError(t *testing.T) {
	s, err := New(zoneBatchTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	streams, err := s.PartitionZonesBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := streams[0].NextBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := streams[0].NextBatch(); err != nil {
		t.Fatal(err)
	}
	if _, err := streams[1].NextBatch(); err == nil {
		t.Fatal("stream behind the world clock did not error")
	}
}
