package sim

import (
	"math/rand"
	"sort"

	"spire/internal/model"
	"spire/internal/stream"
)

// Fault injection for ingest hardening tests. A FaultInjector perturbs a
// clean per-epoch observation trace the way a real reader deployment
// fails: whole-reader dropout bursts, duplicated deliveries, adjacent
// swaps (out-of-order arrival), and lost epochs. It is deterministic
// under a fixed seed and never mutates the input trace — every emitted
// observation is a fresh clone, since the substrate consumes observations
// destructively.

// FaultConfig parameterizes the injector. Zero values disable each fault.
type FaultConfig struct {
	// Seed drives the fault schedule deterministically.
	Seed int64

	// DropoutEvery starts a reader dropout burst every this many epochs;
	// DropoutLen is the burst length in epochs. During a burst one
	// randomly chosen reader goes silent (its readings are removed).
	DropoutEvery model.Epoch
	DropoutLen   model.Epoch

	// DuplicateRate is the per-observation probability of being delivered
	// twice in a row.
	DuplicateRate float64

	// SwapRate is the per-position probability of swapping an observation
	// with its successor in delivery order (out-of-order arrival).
	SwapRate float64

	// DropEpochRate is the per-observation probability of the whole
	// epoch's delivery being lost (an epoch gap).
	DropEpochRate float64
}

// FaultStats counts the faults Apply actually injected — the ground
// truth the ingest-gate accounting tests reconcile IngestStats against.
type FaultStats struct {
	Duplicates    int64 // observations delivered twice
	DroppedEpochs int64 // whole-epoch deliveries lost
	Swaps         int64 // adjacent delivery-order swaps performed
	DropoutEpochs int64 // reader-epochs silenced by dropout bursts
}

// FaultInjector applies a FaultConfig to observation traces.
type FaultInjector struct {
	cfg   FaultConfig
	rng   *rand.Rand
	stats FaultStats
}

// Stats returns the faults injected so far, accumulated across Apply
// calls.
func (f *FaultInjector) Stats() FaultStats { return f.stats }

// NewFaultInjector builds an injector.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Apply returns the faulted delivery sequence for a clean epoch-ordered
// trace. The input is not modified.
func (f *FaultInjector) Apply(trace []*model.Observation) []*model.Observation {
	out := make([]*model.Observation, 0, len(trace))
	var burstVictim model.ReaderID
	burstUntil := model.Epoch(-1)
	for _, o := range trace {
		c := o.Clone()

		if f.cfg.DropoutEvery > 0 && f.cfg.DropoutLen > 0 {
			if c.Time%f.cfg.DropoutEvery == 0 {
				burstVictim = f.pickReader(c)
				burstUntil = c.Time + f.cfg.DropoutLen
			}
			if c.Time < burstUntil {
				if _, present := c.ByReader[burstVictim]; present {
					f.stats.DropoutEpochs++
				}
				delete(c.ByReader, burstVictim)
			}
		}

		if f.cfg.DropEpochRate > 0 && f.rng.Float64() < f.cfg.DropEpochRate {
			f.stats.DroppedEpochs++
			continue
		}
		out = append(out, c)
		if f.cfg.DuplicateRate > 0 && f.rng.Float64() < f.cfg.DuplicateRate {
			out = append(out, c.Clone())
			f.stats.Duplicates++
		}
	}
	if f.cfg.SwapRate > 0 {
		for i := 0; i+1 < len(out); i++ {
			if f.rng.Float64() < f.cfg.SwapRate {
				out[i], out[i+1] = out[i+1], out[i]
				f.stats.Swaps++
			}
		}
	}
	return out
}

// pickReader chooses the burst victim among the readers present in o,
// deterministically given the rng state.
func (f *FaultInjector) pickReader(o *model.Observation) model.ReaderID {
	ids := make([]model.ReaderID, 0, len(o.ByReader))
	for r := range o.ByReader {
		ids = append(ids, r)
	}
	if len(ids) == 0 {
		return 0
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids[f.rng.Intn(len(ids))]
}

// TruncateMidRecord cuts a raw binary reading stream in the middle of the
// given record (not on a record boundary), producing the torn tail a
// crashed writer leaves behind.
func TruncateMidRecord(raw []byte, record int) []byte {
	cut := record*stream.ReadingSize + stream.ReadingSize/2
	if cut > len(raw) {
		cut = len(raw)
	}
	return raw[:cut]
}
