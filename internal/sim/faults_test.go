package sim

import (
	"bytes"
	"reflect"
	"testing"

	"spire/internal/model"
	"spire/internal/stream"
)

// syntheticTrace builds a small epoch-ordered trace with two readers.
func syntheticTrace(n int) []*model.Observation {
	trace := make([]*model.Observation, 0, n)
	for e := model.Epoch(1); e <= model.Epoch(n); e++ {
		o := model.NewObservation(e)
		o.Add(1, model.Tag(100+uint64(e)))
		o.Add(2, model.Tag(200+uint64(e)))
		trace = append(trace, o)
	}
	return trace
}

func TestFaultInjectorDeterministicAndNonMutating(t *testing.T) {
	trace := syntheticTrace(60)
	pristine := make([]*model.Observation, len(trace))
	for i, o := range trace {
		pristine[i] = o.Clone()
	}
	cfg := FaultConfig{
		Seed:          5,
		DropoutEvery:  10,
		DropoutLen:    2,
		DuplicateRate: 0.3,
		SwapRate:      0.3,
		DropEpochRate: 0.1,
	}
	a := NewFaultInjector(cfg).Apply(trace)
	b := NewFaultInjector(cfg).Apply(trace)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must produce the same fault schedule")
	}
	if !reflect.DeepEqual(trace, pristine) {
		t.Fatal("Apply mutated the input trace")
	}
	// The emitted observations must be clones, not aliases.
	for _, o := range a {
		for i := range trace {
			if o == trace[i] {
				t.Fatal("Apply emitted an input observation by reference")
			}
		}
	}
	other := NewFaultInjector(FaultConfig{Seed: 6, DuplicateRate: 0.3, SwapRate: 0.3}).Apply(trace)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds should produce different schedules")
	}
}

func TestFaultInjectorFaultKinds(t *testing.T) {
	trace := syntheticTrace(100)

	dup := NewFaultInjector(FaultConfig{Seed: 1, DuplicateRate: 0.5}).Apply(trace)
	if len(dup) <= len(trace) {
		t.Errorf("duplicates: %d observations from %d", len(dup), len(trace))
	}

	lossy := NewFaultInjector(FaultConfig{Seed: 1, DropEpochRate: 0.3}).Apply(trace)
	if len(lossy) >= len(trace) {
		t.Errorf("epoch drops: %d observations from %d", len(lossy), len(trace))
	}

	swapped := NewFaultInjector(FaultConfig{Seed: 1, SwapRate: 0.5}).Apply(trace)
	inversions := 0
	for i := 0; i+1 < len(swapped); i++ {
		if swapped[i].Time > swapped[i+1].Time {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("swaps produced no out-of-order deliveries")
	}

	dropped := NewFaultInjector(FaultConfig{Seed: 1, DropoutEvery: 10, DropoutLen: 3}).Apply(trace)
	silenced := 0
	for i, o := range dropped {
		if len(o.ByReader) < len(trace[i].ByReader) {
			silenced++
		}
	}
	if silenced == 0 {
		t.Error("dropout bursts silenced no readers")
	}
}

func TestTruncateMidRecord(t *testing.T) {
	var buf bytes.Buffer
	w := stream.NewWriter(&buf)
	for _, rd := range []model.Reading{
		{Tag: 1, Reader: 1, Time: 1},
		{Tag: 2, Reader: 1, Time: 1},
		{Tag: 3, Reader: 2, Time: 2},
	} {
		if err := w.Write(rd); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	torn := TruncateMidRecord(raw, 1)
	want := 1*stream.ReadingSize + stream.ReadingSize/2
	if len(torn) != want {
		t.Fatalf("truncated to %d bytes, want %d", len(torn), want)
	}
	// Past the end the cut clamps to the stream length.
	if got := TruncateMidRecord(raw, 99); len(got) != len(raw) {
		t.Fatalf("out-of-range truncation returned %d bytes, want %d", len(got), len(raw))
	}
}
