package sim

import (
	"spire/internal/inference"
	"spire/internal/model"
)

// TrueResult snapshots the ground truth as an inference.Result, so the
// same compression machinery can build the ground-truth event stream the
// paper's event-based accuracy metric compares against (Expt 7).
//
// Locations are the true locations (model.LocationUnknown for stolen
// objects); Parents are the true direct containers. Observed is left empty
// — ground truth has no notion of a missed reading.
func (s *Simulator) TrueResult() *inference.Result {
	res := &inference.Result{
		Now:       s.now,
		Locations: make(map[model.Tag]model.LocationID, s.world.Len()),
		Parents:   make(map[model.Tag]model.Tag, s.world.Len()),
		Observed:  map[model.Tag]bool{},
	}
	for _, g := range s.world.Objects() {
		res.Locations[g] = s.world.LocationOf(g)
		res.Parents[g] = s.world.ParentOf(g)
	}
	return res
}

// SteadyStateCount reports the number of objects currently in the world —
// used to confirm workloads like the 16-hour ~2860-object steady state of
// Expt 7/8.
func (s *Simulator) SteadyStateCount() int { return s.world.Len() }
