package sim

import (
	"fmt"
	"math/rand"

	"spire/internal/epc"
	"spire/internal/model"
)

// caseState tracks one case's progress through the warehouse.
type caseState uint8

const (
	caseAtEntry caseState = iota
	caseWaitBeltIn
	caseOnBeltIn
	caseOnShelf
	caseWaitPack
	casePacked
	caseOnBeltOut
	caseAtExit
	caseStolen
	caseGone
)

// caseUnit is one case with its items.
type caseUnit struct {
	tag   model.Tag
	items []model.Tag
	state caseState
	// until is the epoch at which the current stage completes.
	until model.Epoch
	shelf model.LocationID
	// pallet is the outbound pallet once packed.
	pallet *palletUnit
	// cold marks cold-chain cargo: tagged under ColdCompany and always
	// shelved on the cold shelf.
	cold bool
}

// coldMove is a cold case temporarily relocated to a warm shelf — an
// excursion or a benign shuffle — due back at ret.
type coldMove struct {
	c   *caseUnit
	ret model.Epoch
}

// palletUnit is an outbound (newly assembled) pallet.
type palletUnit struct {
	tag   model.Tag
	cases []*caseUnit
	until model.Epoch
}

// inbound is an arriving pallet group before unpacking.
type inbound struct {
	pallet model.Tag
	cases  []*caseUnit
	until  model.Epoch
}

// Simulator generates the raw RFID stream of the warehouse and maintains
// the ground truth. It is deterministic under a fixed Config.Seed.
type Simulator struct {
	cfg       Config
	rng       *rand.Rand
	world     *model.World
	seq       *epc.Sequencer
	locs      []model.Location
	readers   []model.Reader
	now       model.Epoch
	nextEntry model.Epoch

	inbounds     []*inbound
	exitPallets  []*inbound // arriving pallets emptied and heading out
	beltInQueue  []*caseUnit
	beltInBusy   *caseUnit
	shelved      []*caseUnit
	packBuffer   []*caseUnit
	packing      []*palletUnit
	beltOutQueue []*palletUnit
	beltOutBusy  *palletUnit
	exiting      []*palletUnit

	thefts   []Theft
	drops    []Drop
	fallen   []model.Tag // items dropped on the belt, awaiting pickup
	loose    []model.Tag // fallen items now parked on shelves
	departed []model.Tag // tags departed in the current epoch

	// anomaly-scenario state (all inert unless the matching Config knob
	// is set; the golden corpus pins that inertness byte-for-byte).
	seqCold      *epc.Sequencer // cold-cargo tag allocator (ColdCompany)
	caseCount    int            // injected cases, for the cold-case period
	nextMisroute model.Epoch    // next epoch a pack completion diverts a case
	coldMoves    []*coldMove    // cold cases off on warm shelves, with due-backs
	misroutes    []Misroute
	excursions   []Excursion
	coldShuffles []ColdShuffle

	// location ids
	locEntry, locBeltIn, locPack, locBeltOut, locExit model.LocationID
	locShelf0                                         model.LocationID
}

// New builds a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		nextEntry: 1,
	}
	// Location table: entry, beltIn, shelves..., packaging, beltOut, exit.
	add := func(name string, exit bool) model.LocationID {
		id := model.LocationID(len(s.locs))
		s.locs = append(s.locs, model.Location{ID: id, Name: name, Exit: exit})
		return id
	}
	s.locEntry = add("entry-door", false)
	s.locBeltIn = add("receiving-belt", false)
	s.locShelf0 = model.LocationID(len(s.locs))
	for i := 0; i < cfg.NumShelves; i++ {
		add(fmt.Sprintf("shelf-%d", i), false)
	}
	s.locPack = add("packaging-area", false)
	s.locBeltOut = add("shipping-belt", false)
	s.locExit = add("exit-door", true)

	w, err := model.NewWorld(s.locs)
	if err != nil {
		return nil, err
	}
	s.world = w
	seq, err := epc.NewSequencer(7)
	if err != nil {
		return nil, err
	}
	s.seq = seq
	if cfg.ColdCasePeriod > 0 {
		if s.seqCold, err = epc.NewSequencer(ColdCompany); err != nil {
			return nil, err
		}
	}
	if cfg.MisrouteInterval > 0 {
		s.nextMisroute = cfg.MisrouteInterval
	}

	s.readers = []model.Reader{
		{ID: ReaderEntry, Location: s.locEntry, Period: 1, ReadRate: cfg.ReadRate},
		{ID: ReaderBeltIn, Location: s.locBeltIn, Period: 1, ReadRate: cfg.ReadRate,
			Confirming: true, ConfirmLevel: model.LevelCase},
		{ID: ReaderPackaging, Location: s.locPack, Period: 1, ReadRate: cfg.ReadRate},
		{ID: ReaderBeltOut, Location: s.locBeltOut, Period: 1, ReadRate: cfg.ReadRate,
			Confirming: true, ConfirmLevel: model.LevelPallet},
		{ID: ReaderExit, Location: s.locExit, Period: 1, ReadRate: cfg.ReadRate},
	}
	for i := 0; i < cfg.NumShelves; i++ {
		s.readers = append(s.readers, model.Reader{
			ID:       readerShelfBase + model.ReaderID(i),
			Location: s.locShelf0 + model.LocationID(i),
			Period:   cfg.ShelfPeriod,
			ReadRate: cfg.ReadRate,
		})
	}
	return s, nil
}

// World exposes the ground truth.
func (s *Simulator) World() *model.World { return s.world }

// Readers returns the reader configuration (for the inference schedule).
func (s *Simulator) Readers() []model.Reader { return s.readers }

// Locations returns the warehouse location table.
func (s *Simulator) Locations() []model.Location { return s.locs }

// EntryLocation returns the warm-up location the paper excludes from
// accuracy scoring.
func (s *Simulator) EntryLocation() model.LocationID { return s.locEntry }

// Now returns the current epoch (the epoch of the last Step).
func (s *Simulator) Now() model.Epoch { return s.now }

// Done reports whether the configured duration has elapsed.
func (s *Simulator) Done() bool { return s.now >= s.cfg.Duration }

// Thefts returns the anomaly log so far.
func (s *Simulator) Thefts() []Theft { return s.thefts }

// Drops returns the item fall-off log so far.
func (s *Simulator) Drops() []Drop { return s.drops }

// Misroutes returns the misroute anomaly log so far.
func (s *Simulator) Misroutes() []Misroute { return s.misroutes }

// Excursions returns the cold-chain excursion log so far.
func (s *Simulator) Excursions() []Excursion { return s.excursions }

// ColdShuffles returns the benign cold-case relocation log so far.
func (s *Simulator) ColdShuffles() []ColdShuffle { return s.coldShuffles }

// ShelfRange returns the contiguous shelf location id range [first, last].
func (s *Simulator) ShelfRange() (first, last model.LocationID) {
	return s.locShelf0, s.locShelf0 + model.LocationID(s.cfg.NumShelves-1)
}

// ColdShelf returns the cold-zone shelf (the first shelf); only
// meaningful when ColdCasePeriod is set.
func (s *Simulator) ColdShelf() model.LocationID { return s.locShelf0 }

// PackagingLocation returns the outbound pallet-assembly area.
func (s *Simulator) PackagingLocation() model.LocationID { return s.locPack }

// ExitLocation returns the exit door.
func (s *Simulator) ExitLocation() model.LocationID { return s.locExit }

// Departed returns the tags that left the world during the last Step.
func (s *Simulator) Departed() []model.Tag { return s.departed }

// Step advances the warehouse by one epoch and returns the epoch's raw
// (pre-deduplication) observation.
func (s *Simulator) Step() (*model.Observation, error) {
	s.now++
	s.world.SetNow(s.now)
	s.departed = s.departed[:0]

	if err := s.advance(); err != nil {
		return nil, err
	}
	return s.observe(), nil
}

// StepBatch advances the warehouse by one epoch like Step but emits the
// readings straight into the reused batch b, skipping the per-epoch
// observation map entirely — the entry point the ingest benchmarks use
// to generate million-tag epochs without allocation. The RNG draw order
// is identical to Step (readers in deployment order, which is ascending
// by ID; tags in world order), so a same-seed simulator produces the
// same trace whichever entry point drives it.
func (s *Simulator) StepBatch(b *model.Batch) error {
	s.now++
	s.world.SetNow(s.now)
	s.departed = s.departed[:0]

	if err := s.advance(); err != nil {
		return err
	}
	s.observeBatch(b)
	return nil
}

// observeBatch is observe writing into batch columns. Any change to one
// must be mirrored in the other; the StepBatch equivalence test pins the
// two together.
func (s *Simulator) observeBatch(b *model.Batch) {
	b.Reset(s.now)
	for i := range s.readers {
		r := &s.readers[i]
		if !r.Active(s.now) {
			continue
		}
		interrogations := s.cfg.NonShelfInterrogations
		if r.Period > 1 {
			interrogations = 1
		}
		miss := 1.0
		for k := 0; k < interrogations; k++ {
			miss *= 1 - r.ReadRate
		}
		detect := 1 - miss
		b.BeginReader(r.ID)
		for _, g := range s.world.At(r.Location) {
			if s.rng.Float64() < detect {
				b.Append(g)
			}
		}
	}
}

// advance applies the epoch's world transitions.
func (s *Simulator) advance() error {
	now := s.now

	// Pallet arrivals.
	for s.nextEntry <= now {
		for i := 0; i < s.cfg.PalletsPerArrival; i++ {
			if err := s.inject(); err != nil {
				return err
			}
		}
		s.nextEntry += s.cfg.PalletInterval
	}

	// Arriving pallets unpack after their entry dwell: cases are released
	// toward the receiving belt and the emptied pallet heads to the exit.
	keep := s.inbounds[:0]
	for _, in := range s.inbounds {
		if now < in.until {
			keep = append(keep, in)
			continue
		}
		for _, c := range in.cases {
			s.world.Uncontain(c.tag)
			c.state = caseWaitBeltIn
			s.beltInQueue = append(s.beltInQueue, c)
		}
		in.until = now + s.cfg.ExitDwell
		if err := s.world.Move(in.pallet, s.locExit); err != nil {
			return err
		}
		s.exitPallets = append(s.exitPallets, in)
	}
	s.inbounds = keep

	// Emptied arriving pallets depart after the exit dwell.
	keepExit := s.exitPallets[:0]
	for _, in := range s.exitPallets {
		if now < in.until {
			keepExit = append(keepExit, in)
			continue
		}
		if err := s.world.Depart(in.pallet); err != nil {
			return err
		}
		s.departed = append(s.departed, in.pallet)
	}
	s.exitPallets = keepExit

	// Receiving belt: one case at a time. A case may shed one item onto
	// the belt as it passes (the running example's item 6); the fallen
	// item is picked up and shelved by whoever clears the belt next.
	if s.beltInBusy != nil && now >= s.beltInBusy.until {
		c := s.beltInBusy
		if s.cfg.ItemDropRate > 0 && len(c.items) > 0 && s.rng.Float64() < s.cfg.ItemDropRate {
			idx := s.rng.Intn(len(c.items))
			it := c.items[idx]
			c.items = append(c.items[:idx], c.items[idx+1:]...)
			s.world.Uncontain(it)
			s.fallen = append(s.fallen, it)
			s.drops = append(s.drops, Drop{Item: it, Case: c.tag, At: now})
		}
		c.state = caseOnShelf
		if c.cold {
			// Cold cargo always goes to the cold shelf.
			c.shelf = s.locShelf0
		} else {
			c.shelf = s.locShelf0 + model.LocationID(s.rng.Intn(s.cfg.NumShelves))
		}
		span := float64(s.cfg.ShelfTime) * (0.5 + s.rng.Float64())
		c.until = now + model.Epoch(span)
		if err := s.world.Move(c.tag, c.shelf); err != nil {
			return err
		}
		// Fallen items from earlier passes ride along to the shelf,
		// loose.
		for _, it := range s.fallen {
			if err := s.world.Move(it, c.shelf); err != nil {
				return err
			}
			s.loose = append(s.loose, it)
		}
		s.fallen = s.fallen[:0]
		s.shelved = append(s.shelved, c)
		s.beltInBusy = nil
	}
	if s.beltInBusy == nil && len(s.beltInQueue) > 0 {
		c := s.beltInQueue[0]
		s.beltInQueue = s.beltInQueue[1:]
		c.state = caseOnBeltIn
		c.until = now + s.cfg.BeltDwell
		if err := s.world.Move(c.tag, s.locBeltIn); err != nil {
			return err
		}
		s.beltInBusy = c
	}

	// Shelved cases move to the packaging area when their stay completes.
	keepShelf := s.shelved[:0]
	for _, c := range s.shelved {
		if c.state != caseOnShelf || now < c.until {
			if c.state == caseOnShelf {
				keepShelf = append(keepShelf, c)
			}
			continue
		}
		c.state = caseWaitPack
		if err := s.world.Move(c.tag, s.locPack); err != nil {
			return err
		}
		s.packBuffer = append(s.packBuffer, c)
	}
	s.shelved = keepShelf

	// Packaging: assemble a new pallet once enough cases have gathered.
	palletSize := s.cfg.CasesMin
	if s.cfg.CasesMax > s.cfg.CasesMin {
		palletSize += s.rng.Intn(s.cfg.CasesMax - s.cfg.CasesMin + 1)
	}
	for len(s.packBuffer) >= palletSize {
		group := s.packBuffer[:palletSize]
		s.packBuffer = s.packBuffer[palletSize:]
		ptag, err := s.seq.Next(model.LevelPallet)
		if err != nil {
			return err
		}
		if _, err := s.world.Enter(ptag, model.LevelPallet, s.locPack); err != nil {
			return err
		}
		p := &palletUnit{tag: ptag, cases: group, until: now + s.cfg.PackDwell}
		for _, c := range group {
			if err := s.world.Contain(c.tag, ptag); err != nil {
				return err
			}
			c.state = casePacked
			c.pallet = p
		}
		s.packing = append(s.packing, p)
	}
	keepPack := s.packing[:0]
	for _, p := range s.packing {
		if now < p.until {
			keepPack = append(keepPack, p)
			continue
		}
		// Misroute anomaly: when one is due, a completing pallet loses a
		// case back onto a shelf and ships without it.
		if s.cfg.MisrouteInterval > 0 && now >= s.nextMisroute && len(p.cases) > 1 {
			if err := s.divert(p, now); err != nil {
				return err
			}
			s.nextMisroute = now + s.cfg.MisrouteInterval
		}
		s.beltOutQueue = append(s.beltOutQueue, p)
	}
	s.packing = keepPack

	// Shipping belt: one pallet at a time.
	if s.beltOutBusy != nil && now >= s.beltOutBusy.until {
		p := s.beltOutBusy
		p.until = now + s.cfg.ExitDwell
		if err := s.world.Move(p.tag, s.locExit); err != nil {
			return err
		}
		for _, c := range p.cases {
			c.state = caseAtExit
		}
		s.exiting = append(s.exiting, p)
		s.beltOutBusy = nil
	}
	if s.beltOutBusy == nil && len(s.beltOutQueue) > 0 {
		p := s.beltOutQueue[0]
		s.beltOutQueue = s.beltOutQueue[1:]
		p.until = now + s.cfg.BeltDwell
		if err := s.world.Move(p.tag, s.locBeltOut); err != nil {
			return err
		}
		for _, c := range p.cases {
			c.state = caseOnBeltOut
		}
		s.beltOutBusy = p
	}

	// Exit: whole outbound groups depart.
	keepExiting := s.exiting[:0]
	for _, p := range s.exiting {
		if now < p.until {
			keepExiting = append(keepExiting, p)
			continue
		}
		for _, c := range p.cases {
			for _, it := range c.items {
				s.world.Uncontain(it)
				if err := s.world.Depart(it); err != nil {
					return err
				}
				s.departed = append(s.departed, it)
			}
			s.world.Uncontain(c.tag)
			if err := s.world.Depart(c.tag); err != nil {
				return err
			}
			s.departed = append(s.departed, c.tag)
			c.state = caseGone
		}
		if err := s.world.Depart(p.tag); err != nil {
			return err
		}
		s.departed = append(s.departed, p.tag)
	}
	s.exiting = keepExiting

	// Theft anomalies: a random shelved case vanishes with its contents.
	// The schedule is offset so theft epochs do not coincide with shelf
	// reader cycles (which would make detection trivially immediate).
	if s.cfg.TheftInterval > 0 && (now+13)%s.cfg.TheftInterval == 0 && len(s.shelved) > 0 {
		idx := s.rng.Intn(len(s.shelved))
		c := s.shelved[idx]
		s.shelved[idx] = s.shelved[len(s.shelved)-1]
		s.shelved = s.shelved[:len(s.shelved)-1]
		c.state = caseStolen
		if err := s.world.Steal(c.tag); err != nil {
			return err
		}
		s.thefts = append(s.thefts, Theft{Case: c.tag, At: now})
	}

	// Cold-chain moves: return warm-dwelling cold cases whose dwell
	// elapsed, then launch any newly due excursion (long dwell, the true
	// anomaly) or shuffle (short benign dwell). Returns are processed
	// first so a shelf freed this epoch is immediately reusable.
	if len(s.coldMoves) > 0 {
		keepMoves := s.coldMoves[:0]
		for _, m := range s.coldMoves {
			if now < m.ret {
				keepMoves = append(keepMoves, m)
				continue
			}
			// Return only while the case is still shelved off the cold
			// shelf — a theft mid-dwell wins and leaves nothing to move.
			if m.c.state == caseOnShelf && m.c.shelf != s.locShelf0 {
				m.c.shelf = s.locShelf0
				if err := s.world.Move(m.c.tag, s.locShelf0); err != nil {
					return err
				}
			}
		}
		s.coldMoves = keepMoves
	}
	// The offsets stagger the two schedules away from each other and from
	// the theft schedule, so the workloads do not collide on one epoch.
	if s.cfg.ExcursionInterval > 0 && (now+31)%s.cfg.ExcursionInterval == 0 {
		if c := s.pickColdShelved(now, s.cfg.ExcursionDwell); c != nil {
			ret, err := s.moveWarm(c, now, s.cfg.ExcursionDwell)
			if err != nil {
				return err
			}
			s.excursions = append(s.excursions, Excursion{Case: c.tag, At: now, Return: ret, Shelf: c.shelf})
		}
	}
	if s.cfg.ColdShuffleInterval > 0 && (now+47)%s.cfg.ColdShuffleInterval == 0 {
		if c := s.pickColdShelved(now, s.cfg.ColdShuffleDwell); c != nil {
			ret, err := s.moveWarm(c, now, s.cfg.ColdShuffleDwell)
			if err != nil {
				return err
			}
			s.coldShuffles = append(s.coldShuffles, ColdShuffle{Case: c.tag, At: now, Return: ret, Shelf: c.shelf})
		}
	}
	return nil
}

// divert pulls one random case off a completing pallet and returns it to
// a shelf — the misroute anomaly. Cold cases go back to the cold shelf so
// a misroute never doubles as a cold-chain excursion.
func (s *Simulator) divert(p *palletUnit, now model.Epoch) error {
	idx := s.rng.Intn(len(p.cases))
	c := p.cases[idx]
	p.cases = append(p.cases[:idx], p.cases[idx+1:]...)
	s.world.Uncontain(c.tag)
	c.pallet = nil
	c.state = caseOnShelf
	if c.cold {
		c.shelf = s.locShelf0
	} else {
		c.shelf = s.locShelf0 + model.LocationID(s.rng.Intn(s.cfg.NumShelves))
	}
	span := float64(s.cfg.ShelfTime) * (0.5 + s.rng.Float64())
	c.until = now + model.Epoch(span)
	if err := s.world.Move(c.tag, c.shelf); err != nil {
		return err
	}
	s.shelved = append(s.shelved, c)
	s.misroutes = append(s.misroutes, Misroute{Case: c.tag, Pallet: p.tag, At: now, Shelf: c.shelf})
	return nil
}

// pickColdShelved selects a random cold case currently on the cold shelf
// with enough shelf time left to complete a dwell of the given length, or
// nil when none qualifies.
func (s *Simulator) pickColdShelved(now, dwell model.Epoch) *caseUnit {
	var candidates []*caseUnit
	for _, c := range s.shelved {
		if c.cold && c.state == caseOnShelf && c.shelf == s.locShelf0 && c.until > now+dwell+1 {
			candidates = append(candidates, c)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return candidates[s.rng.Intn(len(candidates))]
}

// moveWarm relocates a cold case to a random warm shelf for dwell epochs
// and schedules its return.
func (s *Simulator) moveWarm(c *caseUnit, now, dwell model.Epoch) (model.Epoch, error) {
	c.shelf = s.locShelf0 + 1 + model.LocationID(s.rng.Intn(s.cfg.NumShelves-1))
	if err := s.world.Move(c.tag, c.shelf); err != nil {
		return 0, err
	}
	ret := now + dwell
	s.coldMoves = append(s.coldMoves, &coldMove{c: c, ret: ret})
	return ret, nil
}

// inject creates one arriving pallet group at the entry door.
func (s *Simulator) inject() error {
	n := s.cfg.CasesMin
	if s.cfg.CasesMax > s.cfg.CasesMin {
		n += s.rng.Intn(s.cfg.CasesMax - s.cfg.CasesMin + 1)
	}
	ptag, err := s.seq.Next(model.LevelPallet)
	if err != nil {
		return err
	}
	if _, err := s.world.Enter(ptag, model.LevelPallet, s.locEntry); err != nil {
		return err
	}
	in := &inbound{pallet: ptag, until: s.now + s.cfg.EntryDwell}
	for i := 0; i < n; i++ {
		s.caseCount++
		cold := s.cfg.ColdCasePeriod > 0 && s.caseCount%s.cfg.ColdCasePeriod == 0
		caseSeq := s.seq
		if cold {
			caseSeq = s.seqCold
		}
		ctag, err := caseSeq.Next(model.LevelCase)
		if err != nil {
			return err
		}
		if _, err := s.world.Enter(ctag, model.LevelCase, s.locEntry); err != nil {
			return err
		}
		if err := s.world.Contain(ctag, ptag); err != nil {
			return err
		}
		c := &caseUnit{tag: ctag, state: caseAtEntry, cold: cold}
		for j := 0; j < s.cfg.ItemsPerCase; j++ {
			itag, err := s.seq.Next(model.LevelItem)
			if err != nil {
				return err
			}
			if _, err := s.world.Enter(itag, model.LevelItem, s.locEntry); err != nil {
				return err
			}
			if err := s.world.Contain(itag, ctag); err != nil {
				return err
			}
			c.items = append(c.items, itag)
		}
		in.cases = append(in.cases, c)
	}
	s.inbounds = append(s.inbounds, in)
	return nil
}

// observe produces the epoch's readings: every active reader interrogates
// the objects at its location, each responding with the configured read
// rate per interrogation.
func (s *Simulator) observe() *model.Observation {
	o := model.NewObservation(s.now)
	for i := range s.readers {
		r := &s.readers[i]
		if !r.Active(s.now) {
			continue
		}
		interrogations := s.cfg.NonShelfInterrogations
		if r.Period > 1 {
			interrogations = 1
		}
		miss := 1.0
		for k := 0; k < interrogations; k++ {
			miss *= 1 - r.ReadRate
		}
		detect := 1 - miss
		o.ByReader[r.ID] = o.ByReader[r.ID][:0]
		for _, g := range s.world.At(r.Location) {
			if s.rng.Float64() < detect {
				o.Add(r.ID, g)
			}
		}
	}
	return o
}
