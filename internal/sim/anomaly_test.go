package sim

import (
	"testing"

	"spire/internal/epc"
	"spire/internal/model"
)

// anomalyConfig enables all three anomaly workloads at a pace that fires
// each several times within a short run.
func anomalyConfig() Config {
	c := fastConfig()
	c.Duration = 1200
	c.ReadRate = 1.0
	c.TheftInterval = 200
	c.MisrouteInterval = 150
	c.ColdCasePeriod = 3
	c.ExcursionInterval = 180
	c.ExcursionDwell = 50
	c.ColdShuffleInterval = 130
	c.ColdShuffleDwell = 12
	return c
}

func runAnomalies(t *testing.T) *Simulator {
	t.Helper()
	s, err := New(anomalyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAnomalyConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MisrouteInterval = -1 },
		func(c *Config) { c.ColdCasePeriod = -1 },
		func(c *Config) { c.ColdCasePeriod = 2; c.NumShelves = 1 },
		func(c *Config) { c.ExcursionInterval = 100 }, // no cold cargo
		func(c *Config) { c.ColdShuffleInterval = 100 },
		func(c *Config) { c.ColdCasePeriod = 2; c.ExcursionInterval = 100; c.ExcursionDwell = 0 },
		func(c *Config) { c.ColdCasePeriod = 2; c.ColdShuffleInterval = 100; c.ColdShuffleDwell = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad anomaly config %d accepted", i)
		}
	}
	if err := anomalyConfig().Validate(); err != nil {
		t.Fatalf("anomaly config rejected: %v", err)
	}
}

// TestMisroutesDivertCasesOffPallets checks the misroute ground truth:
// diverted cases land back on a shelf while their pallet ships on, and
// every log entry names a real case/pallet pair.
func TestMisroutesDivertCasesOffPallets(t *testing.T) {
	s := runAnomalies(t)
	mis := s.Misroutes()
	if len(mis) < 3 {
		t.Fatalf("want several misroutes over the run, got %d", len(mis))
	}
	first, last := s.ShelfRange()
	for _, m := range mis {
		if m.Shelf < first || m.Shelf > last {
			t.Errorf("misroute %+v landed off the shelf range [%d,%d]", m, first, last)
		}
		if lvl, _ := epc.LevelOf(m.Case); lvl != model.LevelCase {
			t.Errorf("misrouted tag %d is not a case", m.Case)
		}
		if lvl, _ := epc.LevelOf(m.Pallet); lvl != model.LevelPallet {
			t.Errorf("misroute pallet tag %d is not a pallet", m.Pallet)
		}
	}
}

// TestColdCasesPinnedToColdShelf checks the cold-cargo invariant: a cold
// case (ColdCompany prefix) is only ever seen on a warm shelf during a
// logged excursion or shuffle dwell.
func TestColdCasesPinnedToColdShelf(t *testing.T) {
	s, err := New(anomalyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cold := s.ColdShelf()
	first, last := s.ShelfRange()
	warmSeen := map[model.Tag][]model.Epoch{}
	coldSeen := 0
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		for _, g := range s.World().Objects() {
			id, err := epc.Decode(g)
			if err != nil || id.Company != ColdCompany || id.Level != model.LevelCase {
				continue
			}
			loc := s.World().LocationOf(g)
			if loc == cold {
				coldSeen++
			} else if loc > cold && loc <= last {
				warmSeen[g] = append(warmSeen[g], s.Now())
			}
		}
	}
	if coldSeen == 0 {
		t.Fatal("no cold case ever sat on the cold shelf")
	}
	if first != cold {
		t.Fatalf("cold shelf %d is not the first shelf %d", cold, first)
	}
	// Every warm sighting must fall inside a logged dwell for that case.
	dwells := map[model.Tag][][2]model.Epoch{}
	for _, e := range s.Excursions() {
		dwells[e.Case] = append(dwells[e.Case], [2]model.Epoch{e.At, e.Return})
	}
	for _, sh := range s.ColdShuffles() {
		dwells[sh.Case] = append(dwells[sh.Case], [2]model.Epoch{sh.At, sh.Return})
	}
	for g, epochs := range warmSeen {
		for _, at := range epochs {
			ok := false
			for _, d := range dwells[g] {
				if at >= d[0] && at <= d[1] {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("cold case %d on a warm shelf at %d outside any logged dwell", g, at)
			}
		}
	}
}

// TestExcursionsAndShufflesFireAndReturn checks both cold-move logs are
// populated and that returned cases actually made it back to the cold
// shelf before the run ended (for dwells ending well before the end).
func TestExcursionsAndShufflesFireAndReturn(t *testing.T) {
	s := runAnomalies(t)
	exc, shf := s.Excursions(), s.ColdShuffles()
	if len(exc) < 2 {
		t.Fatalf("want several excursions, got %d", len(exc))
	}
	if len(shf) < 2 {
		t.Fatalf("want several shuffles, got %d", len(shf))
	}
	cold := s.ColdShelf()
	for _, e := range exc {
		if e.Shelf == cold {
			t.Errorf("excursion %+v dwelled on the cold shelf", e)
		}
		if e.Return != e.At+anomalyConfig().ExcursionDwell {
			t.Errorf("excursion %+v has dwell %d, want %d", e, e.Return-e.At, anomalyConfig().ExcursionDwell)
		}
	}
	for _, sh := range shf {
		if sh.Return != sh.At+anomalyConfig().ColdShuffleDwell {
			t.Errorf("shuffle %+v has dwell %d, want %d", sh, sh.Return-sh.At, anomalyConfig().ColdShuffleDwell)
		}
	}
}

// TestAnomalyFeaturesOffChangeNothing pins trace inertness directly: the
// zero-valued knobs must produce the byte-identical reading sequence the
// pre-anomaly simulator produced (the golden corpus pins this end-to-end;
// this is the sim-local fast guard).
func TestAnomalyFeaturesOffChangeNothing(t *testing.T) {
	run := func(cfg Config) []model.Reading {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var all []model.Reading
		for !s.Done() {
			o, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, o.Readings()...)
		}
		return all
	}
	base := fastConfig()
	a := run(base)
	// Same config round-tripped through the anomaly fields' zero values.
	base.MisrouteInterval = 0
	base.ColdCasePeriod = 0
	base.ExcursionInterval, base.ExcursionDwell = 0, 0
	base.ColdShuffleInterval, base.ColdShuffleDwell = 0, 0
	b := run(base)
	if len(a) != len(b) {
		t.Fatalf("reading counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
