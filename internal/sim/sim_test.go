package sim

import (
	"testing"

	"spire/internal/epc"
	"spire/internal/model"
)

func fastConfig() Config {
	c := DefaultConfig()
	c.Duration = 400
	c.PalletInterval = 40
	c.ItemsPerCase = 3
	c.ShelfTime = 60
	c.ShelfPeriod = 10
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Duration = 0 },
		func(c *Config) { c.PalletInterval = 0 },
		func(c *Config) { c.PalletsPerArrival = 0 },
		func(c *Config) { c.CasesMin = 0 },
		func(c *Config) { c.CasesMax = 1; c.CasesMin = 3 },
		func(c *Config) { c.ItemsPerCase = -1 },
		func(c *Config) { c.ReadRate = 1.5 },
		func(c *Config) { c.NonShelfInterrogations = 0 },
		func(c *Config) { c.ShelfPeriod = 0 },
		func(c *Config) { c.NumShelves = 0 },
		func(c *Config) { c.ShelfTime = 0 },
		func(c *Config) { c.EntryDwell = 0 },
		func(c *Config) { c.TheftInterval = -1 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	c := DefaultConfig()
	c.ReadRate = -0.1
	if _, err := New(c); err == nil {
		t.Error("New must validate")
	}
}

func TestLifecycleFlowsThroughAllStages(t *testing.T) {
	s, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	visited := make(map[model.LocationID]bool)
	departures := 0
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		for _, g := range s.World().Objects() {
			visited[s.World().LocationOf(g)] = true
		}
		departures += len(s.Departed())
	}
	for _, loc := range s.Locations() {
		if !visited[loc.ID] {
			t.Errorf("no object ever visited %s", loc.Name)
		}
	}
	if departures == 0 {
		t.Error("objects must complete the lifecycle and depart")
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	run := func() []model.Reading {
		s, err := New(fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		var all []model.Reading
		for !s.Done() {
			o, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, o.Readings()...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReadRateControlsVolume(t *testing.T) {
	volume := func(rr float64) int {
		c := fastConfig()
		c.ReadRate = rr
		s, err := New(c)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for !s.Done() {
			o, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			total += o.Total()
		}
		return total
	}
	low, high := volume(0.5), volume(1.0)
	if low >= high {
		t.Errorf("read rate 0.5 volume (%d) must be below read rate 1.0 volume (%d)", low, high)
	}
	if low == 0 {
		t.Error("read rate 0.5 must still produce readings")
	}
}

func TestPerfectReadRateSeesEverything(t *testing.T) {
	c := fastConfig()
	c.ReadRate = 1
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		// Every object at a location whose reader interrogated this epoch
		// must be read.
		for _, r := range s.Readers() {
			if !r.Active(s.Now()) {
				continue
			}
			want := s.World().At(r.Location)
			got := o.ByReader[r.ID]
			if len(got) != len(want) {
				t.Fatalf("epoch %d reader %d: read %d of %d objects",
					s.Now(), r.ID, len(got), len(want))
			}
		}
	}
}

func TestContainmentGroundTruth(t *testing.T) {
	s, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	sawContainedItem := false
	sawPackedCase := false
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		res := s.TrueResult()
		for g, p := range res.Parents {
			if p == model.NoTag {
				continue
			}
			lvl, _ := epc.LevelOf(g)
			plvl, _ := epc.LevelOf(p)
			if plvl <= lvl {
				t.Fatalf("containment %d→%d does not descend levels", p, g)
			}
			if res.Locations[g] != res.Locations[p] {
				t.Fatalf("contained object %d at %v but container %d at %v",
					g, res.Locations[g], p, res.Locations[p])
			}
			if lvl == model.LevelItem {
				sawContainedItem = true
			}
			if lvl == model.LevelCase && plvl == model.LevelPallet {
				sawPackedCase = true
			}
		}
	}
	if !sawContainedItem || !sawPackedCase {
		t.Error("ground truth must exhibit both item→case and case→pallet containment")
	}
}

func TestTheftsProduceUnknownLocations(t *testing.T) {
	c := fastConfig()
	c.TheftInterval = 50
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	thefts := s.Thefts()
	if len(thefts) == 0 {
		t.Fatal("expected theft events")
	}
	for _, th := range thefts {
		if got := s.World().LocationOf(th.Case); got != model.LocationUnknown {
			t.Errorf("stolen case %d location = %v, want unknown", th.Case, got)
		}
		if st := s.World().Lookup(th.Case); st != nil {
			for item := range st.Children {
				if got := s.World().LocationOf(item); got != model.LocationUnknown {
					t.Errorf("stolen case's item %d location = %v, want unknown", item, got)
				}
			}
		}
	}
	// A stolen case is never read again.
	stolen := thefts[0].Case
	s2, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for !s2.Done() {
		o, err := s2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if s2.Now() <= thefts[0].At {
			continue
		}
		for _, tags := range o.ByReader {
			for _, g := range tags {
				if g == stolen {
					t.Fatalf("stolen case %d read at epoch %d", stolen, s2.Now())
				}
			}
		}
	}
}

func TestItemDrops(t *testing.T) {
	c := fastConfig()
	c.ItemDropRate = 0.5
	c.Duration = 600
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	drops := s.Drops()
	if len(drops) == 0 {
		t.Fatal("expected item drops at rate 0.5")
	}
	for _, d := range drops {
		st := s.World().Lookup(d.Item)
		if st == nil {
			// The item may have departed if... dropped items never
			// depart, so it must still be present.
			t.Fatalf("dropped item %d vanished from the world", d.Item)
		}
		if st.Parent != model.NoTag {
			t.Errorf("dropped item %d still contained in %d", d.Item, st.Parent)
		}
	}
	// Validate the drop-rate knob end to end: zero rate drops nothing.
	c.ItemDropRate = 0
	s2, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for !s2.Done() {
		if _, err := s2.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(s2.Drops()) != 0 {
		t.Error("zero drop rate must produce no drops")
	}
	bad := fastConfig()
	bad.ItemDropRate = 1.5
	if _, err := New(bad); err == nil {
		t.Error("drop rate out of range must fail validation")
	}
}

func TestShelfReaderPeriodicity(t *testing.T) {
	c := fastConfig()
	c.ShelfPeriod = 10
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		for r, tags := range o.ByReader {
			if r >= readerShelfBase && len(tags) > 0 && s.Now()%10 != 0 {
				t.Fatalf("shelf reader %d read off its period at epoch %d", r, s.Now())
			}
		}
	}
}

func TestBeltScansOneCaseAtATime(t *testing.T) {
	s, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		cases := 0
		for _, g := range s.World().At(model.LocationID(1)) { // receiving belt
			if lvl, _ := epc.LevelOf(g); lvl == model.LevelCase {
				cases++
			}
		}
		if cases > 1 {
			t.Fatalf("epoch %d: %d cases on the receiving belt", s.Now(), cases)
		}
	}
}

func TestPalletsPerArrival(t *testing.T) {
	c := fastConfig()
	c.PalletsPerArrival = 3
	c.Duration = 10
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	pallets := 0
	for _, g := range s.World().Objects() {
		if lvl, _ := epc.LevelOf(g); lvl == model.LevelPallet {
			pallets++
		}
	}
	if pallets != 3 {
		t.Errorf("pallets after first arrival = %d, want 3", pallets)
	}
	bad := fastConfig()
	bad.PalletsPerArrival = 0
	if _, err := New(bad); err == nil {
		t.Error("zero pallets per arrival must fail validation")
	}
}

func TestAccessors(t *testing.T) {
	s, err := New(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.EntryLocation() != 0 {
		t.Errorf("EntryLocation = %v, want L0", s.EntryLocation())
	}
	if s.Now() != 0 || s.Done() {
		t.Error("fresh simulator must be at epoch 0 and not done")
	}
	if len(s.Readers()) != 5+fastConfig().NumShelves {
		t.Errorf("reader count = %d", len(s.Readers()))
	}
	names := map[string]bool{}
	for _, l := range s.Locations() {
		names[l.Name] = true
	}
	for _, want := range []string{"entry-door", "receiving-belt", "packaging-area", "shipping-belt", "exit-door"} {
		if !names[want] {
			t.Errorf("missing location %q", want)
		}
	}
	tr := s.TrueResult()
	if len(tr.Locations) != 0 {
		t.Error("empty world must yield an empty truth snapshot")
	}
}

func TestPopulationReachesSteadyState(t *testing.T) {
	c := fastConfig()
	c.Duration = 1200
	s, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for !s.Done() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if n := s.SteadyStateCount(); n > peak {
			peak = n
		}
	}
	if peak == 0 {
		t.Fatal("world never populated")
	}
	// After cases start departing the population must stop growing
	// without bound: the peak stays bounded by a few pallet groups.
	perPallet := 1 + 5*(1+3)
	if peak > 12*perPallet {
		t.Errorf("population peak %d suggests objects never depart", peak)
	}
}
