package sim

import (
	"fmt"
	"io"
	"math/rand"
	"slices"
	"sync"

	"spire/internal/model"
)

// ZoneBatchFeed drives one simulator in zone-batch mode: the world
// trajectory is advanced exactly as in Step/StepBatch (one draw stream,
// s.rng, consumed only by the physics), but observations are generated
// from an independent per-reader RNG stream seeded from (Config.Seed,
// reader ID). Because a reader's draw sequence then depends only on the
// world trajectory — not on which other readers are being observed — a
// zone worker can observe just its own readers and still produce readings
// byte-identical to the corresponding columns of a full-warehouse
// zone-batch run. That is what lets federate workers ingest only their
// zone without re-running the whole observation pass per epoch.
//
// Zone-batch observations are their own deterministic trace: they differ
// from the Step/StepBatch trace (which interleaves observation draws into
// s.rng), so a deployment must not mix the two modes on one timeline. All
// zone-batch consumers of a seed agree with each other; the equivalence
// tests pin the union-of-zones property.
type ZoneBatchFeed struct {
	s *Simulator

	mu    sync.Mutex
	epoch model.Epoch // epoch the world has been advanced to
	rngs  map[model.ReaderID]*rand.Rand
}

// NewZoneBatchFeed wraps s for zone-batch observation. The simulator must
// be fresh (not yet stepped) and must not be driven through Step or
// StepBatch afterwards.
func NewZoneBatchFeed(s *Simulator) *ZoneBatchFeed {
	return &ZoneBatchFeed{s: s, rngs: make(map[model.ReaderID]*rand.Rand)}
}

// splitmix64 is the SplitMix64 finalizer, used to spread (seed, reader)
// pairs into independent RNG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (f *ZoneBatchFeed) readerRNG(id model.ReaderID) *rand.Rand {
	r := f.rngs[id]
	if r == nil {
		seed := splitmix64(uint64(f.s.cfg.Seed)) ^ splitmix64(uint64(id)+0x51ED2701A4F3C8D5)
		r = rand.New(rand.NewSource(int64(seed)))
		f.rngs[id] = r
	}
	return r
}

// advanceTo moves the world to epoch t. Streams must be driven in epoch
// lockstep: every stream consumes epoch t before any stream asks for t+1.
// Caller holds f.mu.
func (f *ZoneBatchFeed) advanceTo(t model.Epoch) error {
	switch {
	case t == f.epoch:
		return nil // another stream already advanced this epoch
	case t == f.epoch+1:
		s := f.s
		s.now++
		s.world.SetNow(s.now)
		s.departed = s.departed[:0]
		f.epoch = s.now
		return s.advance()
	default:
		return fmt.Errorf("sim: zone batch stream requested epoch %d with world at %d — streams must be driven in lockstep", t, f.epoch)
	}
}

// Stream returns the feed's view over the given readers (a subset of the
// simulator's deployment). The returned stream owns one reused batch.
func (f *ZoneBatchFeed) Stream(readers []model.Reader) *ZoneBatchStream {
	z := &ZoneBatchStream{feed: f}
	for _, r := range readers {
		z.idx = append(z.idx, f.s.readerIndex(r.ID))
	}
	// Batch.BeginReader requires ascending reader IDs; the deployment
	// table is already ascending by ID, so sorting by index suffices.
	slices.Sort(z.idx)
	return z
}

// ZoneBatchStream is one zone's columnar observation source: each
// NextBatch advances the shared world by one epoch (in lockstep with the
// feed's other streams) and emits the zone's readings into a reused
// batch.
type ZoneBatchStream struct {
	feed *ZoneBatchFeed
	idx  []int // indices into the deployment table, ascending by reader ID
	next model.Epoch
	b    model.Batch
	tags []model.Tag // AtAppend scratch
}

// NextBatch returns the zone's next epoch batch, or io.EOF when the
// configured duration has elapsed. Epochs with no readings in the zone
// still yield an (empty) batch — the substrate needs every epoch.
//
// The returned batch is owned by the stream and valid only until the next
// NextBatch call; callers may consume it in place (core.Substrate
// ProcessBatch compacts the columns it is given), which is exactly the
// stream.BatchReader scratch discipline.
func (z *ZoneBatchStream) NextBatch() (*model.Batch, error) {
	f := z.feed
	if z.next >= f.s.cfg.Duration {
		return nil, io.EOF
	}
	z.next++

	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.advanceTo(z.next); err != nil {
		return nil, err
	}

	s := f.s
	z.b.Reset(z.next)
	for _, i := range z.idx {
		r := &s.readers[i]
		if !r.Active(z.next) {
			continue
		}
		interrogations := s.cfg.NonShelfInterrogations
		if r.Period > 1 {
			interrogations = 1
		}
		miss := 1.0
		for k := 0; k < interrogations; k++ {
			miss *= 1 - r.ReadRate
		}
		detect := 1 - miss
		rng := f.readerRNG(r.ID)
		z.b.BeginReader(r.ID)
		z.tags = s.world.AtAppend(z.tags[:0], r.Location)
		for _, g := range z.tags {
			if rng.Float64() < detect {
				z.b.Append(g)
			}
		}
	}
	return &z.b, nil
}

// readerIndex locates a reader by ID in the deployment table.
func (s *Simulator) readerIndex(id model.ReaderID) int {
	for i := range s.readers {
		if s.readers[i].ID == id {
			return i
		}
	}
	panic(fmt.Sprintf("sim: unknown reader %d", id))
}

// PartitionZonesBatch partitions the warehouse into n zones exactly like
// PartitionZones and returns one zone-batch stream per zone, all sharing
// one feed over s. Driving a subset of the streams is fine (a zone worker
// process drives only its own), but streams that are driven must stay in
// epoch lockstep.
func (s *Simulator) PartitionZonesBatch(n int) ([]*ZoneBatchStream, error) {
	zones, err := s.PartitionZones(n)
	if err != nil {
		return nil, err
	}
	f := NewZoneBatchFeed(s)
	streams := make([]*ZoneBatchStream, n)
	for z, rs := range zones {
		streams[z] = f.Stream(rs)
	}
	return streams, nil
}
