package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// formatValue renders a sample value the way Prometheus expects: shortest
// round-trip representation, with +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleLine writes one `name{labels} value` line; labels may be empty.
func sampleLine(w io.Writer, name, labels, value string) error {
	if labels == "" {
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	return err
}

// mergeLabels appends extra to a rendered label set.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return extra
	}
	return labels + "," + extra
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per family,
// cumulative le-labeled buckets plus _sum and _count for histograms.
// Output order is the stable Snapshot order. Safe to call concurrently
// with metric recording. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshot()
	lastName := ""
	for _, m := range snaps {
		if m.Name != lastName {
			if help := strings.TrimSpace(m.Help); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
			lastName = m.Name
		}
		switch m.Type {
		case "histogram":
			for _, b := range m.Buckets {
				le := mergeLabels(m.Labels, `le="`+formatValue(b.UpperBound)+`"`)
				if err := sampleLine(w, m.Name+"_bucket", le, strconv.FormatUint(b.Count, 10)); err != nil {
					return err
				}
			}
			if err := sampleLine(w, m.Name+"_sum", m.Labels, formatValue(m.Sum)); err != nil {
				return err
			}
			if err := sampleLine(w, m.Name+"_count", m.Labels, strconv.FormatUint(m.Count, 10)); err != nil {
				return err
			}
		default:
			if err := sampleLine(w, m.Name, m.Labels, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
