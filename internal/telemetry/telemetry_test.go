package telemetry

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
}

func TestNilRegistryHandsOutNilMetrics(t *testing.T) {
	var r *Registry
	if r.Counter("x", "") != nil {
		t.Error("nil registry must return a nil counter")
	}
	if r.Gauge("x", "") != nil {
		t.Error("nil registry must return a nil gauge")
	}
	if r.Histogram("x", "", DefLatencyBuckets) != nil {
		t.Error("nil registry must return a nil histogram")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition: err=%v, wrote %q", err, sb.String())
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spire_test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("spire_test_gauge", "a gauge")
	g.Set(42)
	g.Add(-2)
	if g.Value() != 40 {
		t.Errorf("gauge = %d, want 40", g.Value())
	}
	// Re-registration returns the same instance.
	if r.Counter("spire_test_total", "a counter") != c {
		t.Error("re-registering a counter must return the existing one")
	}
	if r.Gauge("spire_test_gauge", "") != g {
		t.Error("re-registering a gauge must return the existing one")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("spire_conflict", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("spire_conflict", "")
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("spire_test_seconds", "", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.0000001, 2, 4, 5, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d metrics, want 1", len(snap))
	}
	m := snap[0]
	// le is inclusive: 1 lands in the le=1 bucket, 5 in le=5.
	wantCum := []uint64{2, 4, 6, 7} // le=1, le=2, le=5, +Inf
	for i, b := range m.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%g): cum %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(m.Buckets[len(m.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket must be +Inf")
	}
	if m.Count != 7 {
		t.Errorf("count = %d, want 7", m.Count)
	}
}

// TestHistogramProperties is the property test of the PR brief: for random
// observation sequences, (a) the +Inf cumulative bucket equals the total
// observation count, (b) cumulative bucket counts are monotone, (c) the
// sum matches the observed values, and (d) snapshots are idempotent —
// snapshotting is read-only and two back-to-back snapshots of quiescent
// state are deep-equal.
func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		r := NewRegistry()
		// Random bucket layout: 1-12 sorted positive bounds.
		nb := 1 + rng.Intn(12)
		bounds := make([]float64, nb)
		x := 0.0
		for i := range bounds {
			x += rng.Float64() + 1e-9
			bounds[i] = x
		}
		h := r.Histogram("spire_prop_seconds", "", bounds)

		n := rng.Intn(2000)
		var sum float64
		for i := 0; i < n; i++ {
			// Spread observations across, below, and beyond the buckets,
			// including exact boundary hits.
			var v float64
			switch rng.Intn(3) {
			case 0:
				v = bounds[rng.Intn(nb)] // exact boundary
			case 1:
				v = rng.Float64() * x * 2 // anywhere, incl. beyond the last bound
			default:
				v = rng.NormFloat64() // negative values land in the first bucket
			}
			h.Observe(v)
			sum += v
		}

		snap1 := r.Snapshot()
		snap2 := r.Snapshot()
		if !reflect.DeepEqual(snap1, snap2) {
			t.Fatalf("trial %d: back-to-back snapshots differ", trial)
		}
		m := snap1[0]
		if m.Count != uint64(n) {
			t.Fatalf("trial %d: count %d, want %d", trial, m.Count, n)
		}
		if got := m.Buckets[len(m.Buckets)-1].Count; got != uint64(n) {
			t.Fatalf("trial %d: +Inf bucket %d, want %d", trial, got, n)
		}
		for i := 1; i < len(m.Buckets); i++ {
			if m.Buckets[i].Count < m.Buckets[i-1].Count {
				t.Fatalf("trial %d: cumulative counts not monotone at bucket %d", trial, i)
			}
		}
		if math.Abs(m.Sum-sum) > 1e-6*math.Max(1, math.Abs(sum)) {
			t.Fatalf("trial %d: sum %g, want %g", trial, m.Sum, sum)
		}
		if h.Count() != uint64(n) || h.Sum() != m.Sum {
			t.Fatalf("trial %d: accessor mismatch", trial)
		}
	}
}

// TestHistogramConcurrentObserve drives Observe from many goroutines; run
// under -race this doubles as the data-race check. No count may be lost
// and the sum must be exact (integer-valued observations keep float
// addition exact regardless of ordering).
func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("spire_conc_seconds", "", []float64{1, 2, 4, 8})
	c := r.Counter("spire_conc_total", "")
	g := r.Gauge("spire_conc_gauge", "")
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				h.Observe(float64(rng.Intn(10)))
				c.Inc()
				g.Set(int64(i))
			}
		}(int64(w))
	}
	// Concurrent scrapes must be safe too.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if h.Count() != total {
		t.Errorf("histogram lost counts: %d, want %d", h.Count(), total)
	}
	if c.Value() != total {
		t.Errorf("counter lost increments: %d, want %d", c.Value(), total)
	}
	if h.Sum() != math.Trunc(h.Sum()) {
		t.Errorf("integer observations must give an integer sum, got %g", h.Sum())
	}
	snap := r.Snapshot()
	for _, m := range snap {
		if m.Type == "histogram" && m.Buckets[len(m.Buckets)-1].Count != total {
			t.Errorf("+Inf bucket %d, want %d", m.Buckets[len(m.Buckets)-1].Count, total)
		}
	}
}

func TestSnapshotStableSorted(t *testing.T) {
	r := NewRegistry()
	// Register out of order, with labeled children out of order too.
	r.Gauge("spire_b_gauge", "")
	r.Counter("spire_a_total", "", "stage", "update")
	r.Counter("spire_a_total", "", "stage", "dedup")
	r.Histogram("spire_c_seconds", "", []float64{1})
	snap := r.Snapshot()
	var got []string
	for _, m := range snap {
		got = append(got, m.Name+"|"+m.Labels)
	}
	want := []string{
		`spire_a_total|stage="dedup"`,
		`spire_a_total|stage="update"`,
		"spire_b_gauge|",
		"spire_c_seconds|",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("spire_events_total", "Events emitted.", "level", "2").Add(7)
	r.Gauge("spire_graph_nodes", "Graph nodes.").Set(42)
	h := r.Histogram("spire_stage_seconds", "Stage latency.", []float64{0.5, 1}, "stage", "infer")
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(3)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP spire_events_total Events emitted.
# TYPE spire_events_total counter
spire_events_total{level="2"} 7
# HELP spire_graph_nodes Graph nodes.
# TYPE spire_graph_nodes gauge
spire_graph_nodes 42
# HELP spire_stage_seconds Stage latency.
# TYPE spire_stage_seconds histogram
spire_stage_seconds_bucket{stage="infer",le="0.5"} 1
spire_stage_seconds_bucket{stage="infer",le="1"} 2
spire_stage_seconds_bucket{stage="infer",le="+Inf"} 3
spire_stage_seconds_sum{stage="infer"} 4
spire_stage_seconds_count{stage="infer"} 3
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestLabelEscaping pins the Prometheus 0.0.4 label-value escapes
// (backslash, double quote, newline) against hostile values: each value
// must round-trip into exactly the escaped form, and the exposition must
// stay one sample per line — an unescaped newline would split a sample
// and corrupt every series after it.
func TestLabelEscaping(t *testing.T) {
	cases := []struct {
		name, value, want string
	}{
		{"mixed", "a\"b\\c\nd", `a\"b\\c\nd`},
		{"quote-only", `say "hi"`, `say \"hi\"`},
		{"backslash-run", `C:\tmp\x`, `C:\\tmp\\x`},
		{"newline-bomb", "line1\nline2\nline3", `line1\nline2\nline3`},
		{"trailing-backslash", `dir\`, `dir\\`},
		{"escape-lookalike", `already\nescaped`, `already\\nescaped`},
		{"injection", "v\"} 0\nevil_total 1", `v\"} 0\nevil_total 1`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("spire_esc_total", "", "path", tc.value).Inc()
			r.Histogram("spire_esc_seconds", "", []float64{1}, "path", tc.value).Observe(0.5)
			var sb strings.Builder
			if err := r.WritePrometheus(&sb); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			if !strings.Contains(out, `path="`+tc.want+`"`) {
				t.Errorf("label value %q not escaped to %q:\n%s", tc.value, tc.want, out)
			}
			if !strings.Contains(out, `path="`+tc.want+`",le="1"`) {
				t.Errorf("histogram lost escaping next to the le label:\n%s", out)
			}
			for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
				if line == "" {
					t.Errorf("blank line in exposition (unescaped newline?):\n%s", out)
				}
				if !strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "spire_esc_") {
					t.Errorf("sample line injected by hostile label: %q", line)
				}
			}
		})
	}
}

// TestRecordingAllocs pins the zero-allocation contract of the hot-path
// operations; the epoch loop relies on it.
func TestRecordingAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("spire_alloc_total", "")
	g := r.Gauge("spire_alloc_gauge", "")
	h := r.Histogram("spire_alloc_seconds", "", DefLatencyBuckets)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		g.Add(-1)
		h.Observe(0.0042)
	}); n != 0 {
		t.Errorf("hot-path recording allocates %.1f times per op, want 0", n)
	}
	// Disabled (nil) metrics must be allocation-free too.
	var nc *Counter
	var ng *Gauge
	var nh *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		nc.Inc()
		ng.Set(1)
		nh.Observe(1)
	}); n != 0 {
		t.Errorf("nil recording allocates %.1f times per op, want 0", n)
	}
}
