// Package telemetry is SPIRE's runtime observability layer: a small,
// dependency-free set of atomic counters, gauges, and fixed-bucket
// histograms behind a Registry that exposes a stable snapshot and the
// Prometheus text format.
//
// Two properties drive the design:
//
//   - Hot-path safety. Recording a sample is a handful of atomic
//     operations — no locks, no allocations, no formatting. The epoch loop
//     can observe every stage without perturbing the numbers it measures.
//
//   - Transparent disablement. Every metric method is a no-op on a nil
//     receiver, and a nil *Registry hands out nil metrics. Instrumented
//     code therefore calls its metrics unconditionally; whether telemetry
//     is enabled is decided once, at wiring time, and the instrumentation
//     can never change pipeline output (a contract pinned by the
//     transparency tests in internal/core).
//
// Registration (Counter/Gauge/Histogram) takes a mutex and may allocate;
// it is meant for startup. Recording and snapshotting are safe for
// concurrent use with each other, so an HTTP scrape never blocks the
// pipeline.
package telemetry

import (
	"fmt"
	"math"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative to keep the counter monotone;
// negative deltas are ignored). No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. No-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (may be negative). No-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (zero on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram in the Prometheus style: bucket i
// counts observations v <= bounds[i], with an implicit +Inf bucket at the
// end. Counts are per-bucket (not cumulative) internally; snapshots render
// the cumulative form. Observe is lock-free and allocation-free.
type Histogram struct {
	bounds  []float64       // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64 // len(bounds)+1
	sumBits atomic.Uint64   // float64 bits of the running sum, CAS-updated
}

// DefLatencyBuckets spans 1µs to 2.5s, a decade-and-a-half of per-stage
// epoch latencies: the fastest stages (dedup on a quiet epoch) sit in the
// low microseconds, a complete inference pass over a large graph in the
// tens of milliseconds, and a checkpoint fsync can reach the high tail.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	1e-1, 2.5e-1, 5e-1,
	1, 2.5,
}

// Observe records one sample. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; equal values belong to the
	// bucket (le is inclusive).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (zero on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (zero on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metricKind is the Prometheus metric type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// child is one registered metric instance: a label set within a family.
type child struct {
	labels string // rendered `k1="v1",k2="v2"` (empty for unlabeled)
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family groups the children sharing a metric name; Prometheus requires
// one HELP/TYPE header per name.
type family struct {
	name     string
	help     string
	kind     metricKind
	buckets  []float64 // histograms only
	children []*child  // sorted by labels at snapshot time
}

// Registry holds registered metrics. The zero value is not usable; create
// one with NewRegistry. All methods are safe on a nil *Registry, which
// returns nil (no-op) metrics — the disabled mode of the package.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// renderLabels turns alternating key, value pairs into the canonical
// `k1="v1",k2="v2"` form, sorted by key, with values escaped.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", kv))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	slices.SortFunc(pairs, func(a, b pair) int { return strings.Compare(a.k, b.k) })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the Prometheus label-value escapes.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// lookup finds or creates the family and the child for the label set.
// Returns nil if the registry is nil. Registering the same name and labels
// twice returns the existing metric; re-registering a name with a
// different kind panics (a wiring bug, not a runtime condition).
func (r *Registry) lookup(name, help string, kind metricKind, buckets []float64, labels []string) *child {
	if r == nil {
		return nil
	}
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	for _, c := range f.children {
		if c.labels == ls {
			return c
		}
	}
	c := &child{labels: ls}
	switch kind {
	case kindCounter:
		c.ctr = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		h := &Histogram{bounds: append([]float64(nil), f.buckets...)}
		if !slices.IsSorted(h.bounds) {
			panic(fmt.Sprintf("telemetry: %s bucket bounds not sorted", name))
		}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		c.hist = h
	}
	f.children = append(f.children, c)
	return c
}

// Counter registers (or finds) a counter. Labels are alternating key,
// value pairs. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := r.lookup(name, help, kindCounter, nil, labels)
	if c == nil {
		return nil
	}
	return c.ctr
}

// Gauge registers (or finds) a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	c := r.lookup(name, help, kindGauge, nil, labels)
	if c == nil {
		return nil
	}
	return c.gauge
}

// Histogram registers (or finds) a histogram with the given bucket upper
// bounds (sorted ascending; +Inf is implicit). The bounds of the first
// registration win for the whole family. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	c := r.lookup(name, help, kindHistogram, buckets, labels)
	if c == nil {
		return nil
	}
	return c.hist
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 // math.Inf(1) for the +Inf bucket
	Count      uint64  // cumulative count of observations <= UpperBound
}

// MetricSnapshot is one metric instance at a point in time.
type MetricSnapshot struct {
	Name   string // family name
	Labels string // rendered label set, "" when unlabeled
	Help   string
	Type   string // "counter", "gauge", or "histogram"

	Value float64 // counter/gauge value

	// Histogram fields; Buckets is cumulative and ends with +Inf.
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Snapshot returns every registered metric, sorted by name then label set.
// The order is stable across calls with the same registrations, and
// snapshotting mutates nothing, so back-to-back snapshots of quiescent
// state are identical. Returns nil on a nil registry.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	slices.SortFunc(fams, func(a, b *family) int { return strings.Compare(a.name, b.name) })

	var out []MetricSnapshot
	for _, f := range fams {
		children := append([]*child(nil), f.children...)
		slices.SortFunc(children, func(a, b *child) int { return strings.Compare(a.labels, b.labels) })
		for _, c := range children {
			m := MetricSnapshot{Name: f.name, Labels: c.labels, Help: f.help, Type: f.kind.String()}
			switch f.kind {
			case kindCounter:
				m.Value = float64(c.ctr.Value())
			case kindGauge:
				m.Value = float64(c.gauge.Value())
			case kindHistogram:
				h := c.hist
				var cum uint64
				m.Buckets = make([]Bucket, 0, len(h.bounds)+1)
				for i, b := range h.bounds {
					cum += h.counts[i].Load()
					m.Buckets = append(m.Buckets, Bucket{UpperBound: b, Count: cum})
				}
				cum += h.counts[len(h.bounds)].Load()
				m.Buckets = append(m.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
				m.Count = cum
				m.Sum = h.Sum()
			}
			out = append(out, m)
		}
	}
	return out
}
