package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spire/internal/event"
	"spire/internal/sim"
	"spire/internal/telemetry"
)

// Instrumentation transparency: telemetry is observation-only, so a run
// with a live registry and a run with none must be indistinguishable in
// everything the pipeline produces — the emitted event stream, the query
// store built from it, and the checkpoint bytes. These tests pin that
// contract; any instrumentation that leaks into outputs (reordering a
// map iteration, consuming randomness, mutating state to measure it)
// breaks them.

// zeroWallClock clears the accumulated wall-clock counters before a
// snapshot comparison. They are the one legitimately nondeterministic
// piece of persisted state — two runs never measure identical durations —
// and they influence nothing downstream.
func zeroWallClock(sub *Substrate) {
	sub.stats.UpdateTime = 0
	sub.stats.InferenceTime = 0
}

func testInstrumentationTransparency(t *testing.T, level CompressionLevel) {
	trace, s := buildTrace(t, 150)
	end := trace[len(trace)-1].Time + 1

	run := func(reg *telemetry.Registry) (*Substrate, []event.Event) {
		sub := newSubstrate(t, s, level)
		sub.Instrument(reg)
		var evs []event.Event
		for _, o := range trace {
			out, err := sub.ProcessEpoch(o.Clone())
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, out.Events...)
		}
		evs = append(evs, sub.Close(end)...)
		return sub, evs
	}

	plainSub, plainEvs := run(nil)
	reg := telemetry.NewRegistry()
	instSub, instEvs := run(reg)

	// The event streams must be byte-identical on the wire.
	plainBytes := encodeEvents(t, plainEvs)
	if len(plainBytes) == 0 {
		t.Fatal("reference run produced no events")
	}
	if !bytes.Equal(plainBytes, encodeEvents(t, instEvs)) {
		t.Fatalf("instrumented event stream differs (%d vs %d events)",
			len(instEvs), len(plainEvs))
	}

	// The query stores built from both streams must answer identically.
	compareStores(t, feedStore(t, instEvs), feedStore(t, plainEvs), "instrumented run")

	// The checkpoints must be byte-identical once the wall-clock stat
	// counters — nondeterministic across any two runs, instrumented or
	// not — are taken out of the picture.
	zeroWallClock(plainSub)
	zeroWallClock(instSub)
	var plainSnap, instSnap bytes.Buffer
	if err := plainSub.Snapshot(&plainSnap); err != nil {
		t.Fatal(err)
	}
	if err := instSub.Snapshot(&instSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainSnap.Bytes(), instSnap.Bytes()) {
		t.Fatal("instrumented checkpoint differs from uninstrumented checkpoint")
	}

	// SnapshotToFile takes the counting-writer path when instrumented;
	// the file bytes must still match the plain encoding exactly.
	path := filepath.Join(t.TempDir(), "inst.ckpt")
	if err := instSub.SnapshotToFile(path); err != nil {
		t.Fatal(err)
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fileBytes, plainSnap.Bytes()) {
		t.Fatal("instrumented SnapshotToFile bytes differ from plain Snapshot")
	}

	// Guard against vacuous success: the instrumented run must actually
	// have recorded. Epochs counted, every substrate stage observed, and
	// the graph gauges populated.
	snaps := reg.Snapshot()
	byName := map[string][]telemetry.MetricSnapshot{}
	for _, m := range snaps {
		byName[m.Name] = append(byName[m.Name], m)
	}
	if got := byName["spire_epochs_total"]; len(got) != 1 || got[0].Value != float64(len(trace)) {
		t.Errorf("spire_epochs_total = %v, want %d", got, len(trace))
	}
	stageCounts := map[string]uint64{}
	for _, m := range byName["spire_epoch_stage_seconds"] {
		stageCounts[m.Labels] = m.Count
	}
	for _, stage := range []string{"dedup", "update", "inference", "conflict", "compress"} {
		if stageCounts[`stage="`+stage+`"`] != uint64(len(trace)) {
			t.Errorf("stage %s observed %d times, want %d",
				stage, stageCounts[`stage="`+stage+`"`], len(trace))
		}
	}
	if got := byName["spire_graph_nodes"]; len(got) != 1 || got[0].Value <= 0 {
		t.Errorf("spire_graph_nodes = %v, want > 0", got)
	}
	if got := byName["spire_checkpoint_writes_total"]; len(got) != 1 || got[0].Value != 1 {
		t.Errorf("spire_checkpoint_writes_total = %v, want 1", got)
	}
}

func TestInstrumentationTransparencyLevel1(t *testing.T) {
	testInstrumentationTransparency(t, Level1)
}

func TestInstrumentationTransparencyLevel2(t *testing.T) {
	testInstrumentationTransparency(t, Level2)
}

// TestInstrumentationTransparencyRunner runs the full runner path — the
// ingest gate under the repair policy over a faulted delivery — with and
// without telemetry and requires byte-identical output. This covers the
// StageIngest timing wrappers, which the substrate-level test cannot.
func TestInstrumentationTransparencyRunner(t *testing.T) {
	trace, s := buildTrace(t, 150)
	inj := sim.NewFaultInjector(sim.FaultConfig{
		Seed:          7,
		DuplicateRate: 0.15,
		SwapRate:      0.15,
	})
	delivery := inj.Apply(trace)
	cfg := RunnerConfig{Ingest: IngestConfig{Policy: IngestRepair}}

	plain, _ := runGated(t, newSubstrate(t, s, Level2), cfg, delivery)

	reg := telemetry.NewRegistry()
	instSub := newSubstrate(t, s, Level2)
	instSub.Instrument(reg)
	inst, _ := runGated(t, instSub, cfg, delivery)

	if !bytes.Equal(encodeEvents(t, plain), encodeEvents(t, inst)) {
		t.Fatalf("instrumented runner stream differs (%d vs %d events)", len(inst), len(plain))
	}
	var ingested uint64
	for _, m := range reg.Snapshot() {
		if m.Name == "spire_epoch_stage_seconds" && m.Labels == `stage="ingest"` {
			ingested = m.Count
		}
	}
	if ingested == 0 {
		t.Error("ingest stage never observed through the runner")
	}
}
