package core

import (
	"bytes"
	"fmt"
	"testing"

	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
)

// The worker pool and the settled-slab cache are runtime tuning knobs:
// for any worker count and either cache setting the substrate must emit a
// byte-identical event stream, build an identical query store, and write
// byte-identical snapshots. These tests pin that end to end, including
// across a mid-run checkpoint/restore that retunes the worker count the
// way the CLI's -infer-workers flag does after a restore.

// inferVariant names one (workers, cache) operating point.
type inferVariant struct {
	workers      int
	disableCache bool
}

func (v inferVariant) String() string {
	return fmt.Sprintf("workers=%d/cache=%v", v.workers, !v.disableCache)
}

var inferVariants = []inferVariant{
	{workers: 1, disableCache: false},
	{workers: 2, disableCache: false},
	{workers: 4, disableCache: true},
	{workers: 4, disableCache: false},
	{workers: 8, disableCache: false},
}

func newTunedSubstrate(t *testing.T, s *sim.Simulator, level CompressionLevel, v inferVariant) *Substrate {
	t.Helper()
	icfg := inference.DefaultConfig()
	icfg.Workers = v.workers
	icfg.DisableCache = v.disableCache
	sub, err := New(Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   icfg,
		Compression: level,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

// runTraceSnap processes a whole trace, returning the per-epoch event
// slices, the closing events, and the snapshot taken right after epoch
// index mid and at the end.
func runTraceSnap(t *testing.T, sub *Substrate, trace []*model.Observation, mid int) (perEpoch [][]event.Event, closing []event.Event, midSnap, endSnap []byte) {
	t.Helper()
	perEpoch = make([][]event.Event, len(trace))
	for i, o := range trace {
		out, err := sub.ProcessEpoch(o.Clone())
		if err != nil {
			t.Fatal(err)
		}
		perEpoch[i] = append([]event.Event(nil), out.Events...)
		if i == mid {
			zeroWallClock(sub) // snapshots embed wall-clock stage timings
			var buf bytes.Buffer
			if err := sub.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			midSnap = buf.Bytes()
		}
	}
	closing = sub.Close(trace[len(trace)-1].Time + 1)
	zeroWallClock(sub)
	var buf bytes.Buffer
	if err := sub.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return perEpoch, closing, midSnap, buf.Bytes()
}

func flatten(perEpoch [][]event.Event, closing []event.Event) []event.Event {
	var full []event.Event
	for _, evs := range perEpoch {
		full = append(full, evs...)
	}
	return append(full, closing...)
}

// TestInferWorkersByteIdentity is the end-to-end determinism pin of the
// sharded inference path: every (workers, cache) variant reproduces the
// serial cache-off run bit for bit at both compression levels.
func TestInferWorkersByteIdentity(t *testing.T) {
	trace, s := buildTrace(t, 120)
	mid := len(trace) / 2
	for _, level := range []CompressionLevel{Level1, Level2} {
		t.Run(fmt.Sprintf("level%d", level), func(t *testing.T) {
			base := newTunedSubstrate(t, s, level, inferVariant{workers: 1, disableCache: true})
			refEpochs, refClosing, refMid, refEnd := runTraceSnap(t, base, trace, mid)
			refFull := flatten(refEpochs, refClosing)
			refBytes := encodeEvents(t, refFull)
			refStore := feedStore(t, refFull)
			if len(refBytes) == 0 {
				t.Fatal("reference run produced no events")
			}

			for _, v := range inferVariants {
				sub := newTunedSubstrate(t, s, level, v)
				perEpoch, closing, midSnap, endSnap := runTraceSnap(t, sub, trace, mid)
				full := flatten(perEpoch, closing)
				if !bytes.Equal(encodeEvents(t, full), refBytes) {
					t.Fatalf("%v: event stream differs from serial cache-off run (%d vs %d events)",
						v, len(full), len(refFull))
				}
				// Workers and DisableCache are runtime tuning, never state:
				// snapshots must be byte-identical mid-run and at the end.
				if !bytes.Equal(midSnap, refMid) {
					t.Fatalf("%v: mid-run snapshot differs from reference", v)
				}
				if !bytes.Equal(endSnap, refEnd) {
					t.Fatalf("%v: final snapshot differs from reference", v)
				}
				compareStores(t, feedStore(t, full), refStore, v.String())
			}

			// Restore from the mid-run snapshot, retune the pool the way the
			// CLI does after restore, and replay the tail: the combined
			// stream must still match the uninterrupted serial run.
			rsub, err := RestoreSubstrate(bytes.NewReader(refMid))
			if err != nil {
				t.Fatal(err)
			}
			rsub.SetInferWorkers(4)
			stream := flatten(refEpochs[:mid+1], nil)
			for _, o := range trace[mid+1:] {
				out, err := rsub.ProcessEpoch(o.Clone())
				if err != nil {
					t.Fatal(err)
				}
				stream = append(stream, out.Events...)
			}
			stream = append(stream, rsub.Close(trace[len(trace)-1].Time+1)...)
			if !bytes.Equal(encodeEvents(t, stream), refBytes) {
				t.Fatal("restore + SetInferWorkers(4) replay not byte-identical")
			}
		})
	}
}

// FuzzInferParallelEquivalence drives fault-injected delivery sequences
// (dropout bursts, duplicates, swaps, lost epochs) through the repairing
// ingest gate into three differently tuned substrates and demands
// identical output streams and snapshots. The faults come from the fuzzed
// parameters, so the fuzzer explores the space of broken reader feeds.
func FuzzInferParallelEquivalence(f *testing.F) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 80
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var trace []*model.Observation
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			f.Fatal(err)
		}
		trace = append(trace, o)
	}

	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0), byte(0))
	f.Add(int64(2), byte(30), byte(30), byte(10), byte(10), byte(3))
	f.Add(int64(3), byte(60), byte(0), byte(25), byte(7), byte(2))
	f.Add(int64(4), byte(0), byte(60), byte(0), byte(15), byte(5))
	f.Fuzz(func(t *testing.T, seed int64, dup, swap, drop, burstEvery, burstLen byte) {
		fcfg := sim.FaultConfig{
			Seed:          seed,
			DuplicateRate: float64(dup%64) / 100,
			SwapRate:      float64(swap%64) / 100,
			DropEpochRate: float64(drop%32) / 100,
			DropoutEvery:  model.Epoch(burstEvery % 20),
			DropoutLen:    model.Epoch(burstLen % 5),
		}
		delivery := sim.NewFaultInjector(fcfg).Apply(trace)
		rcfg := RunnerConfig{Ingest: IngestConfig{Policy: IngestRepair}}

		variants := []inferVariant{
			{workers: 1, disableCache: true},
			{workers: 4, disableCache: true},
			{workers: 4, disableCache: false},
		}
		var refEvents []byte
		var refSnap []byte
		for i, v := range variants {
			sub := newTunedSubstrate(t, s, Level2, v)
			evs, _ := runGated(t, sub, rcfg, delivery)
			got := encodeEvents(t, evs)
			zeroWallClock(sub) // snapshots embed wall-clock stage timings
			var snap bytes.Buffer
			if err := sub.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				refEvents, refSnap = got, snap.Bytes()
				continue
			}
			if !bytes.Equal(got, refEvents) {
				t.Fatalf("%v: faulted stream output differs from serial cache-off run", v)
			}
			if !bytes.Equal(snap.Bytes(), refSnap) {
				t.Fatalf("%v: snapshot after faulted stream differs", v)
			}
		}
	})
}
