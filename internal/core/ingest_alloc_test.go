package core

import (
	"testing"

	"spire/internal/model"
)

// gateRing builds a reusable ring of observations (two readers, fixed
// tags) plus duplicate deliveries of the same epochs, so a steady-state
// ingest loop can run indefinitely without constructing new input.
func gateRing(n int) (obs, dups []*model.Observation) {
	mk := func() *model.Observation {
		return &model.Observation{ByReader: map[model.ReaderID][]model.Tag{
			1: {10, 11, 12, 13},
			2: {11, 12, 20, 21},
		}}
	}
	for i := 0; i < n; i++ {
		obs = append(obs, mk())
		dups = append(dups, mk())
	}
	return obs, dups
}

// TestIngestGateSteadyStateAllocs pins the gate scratch reuse: once warm,
// the repair path (buffer, merge a duplicate delivery, flush through the
// reorder window) and the reject path allocate nothing per offer. Before
// the scratch hoist, every flush built a fresh ready slice and output
// slice and every merge a fresh seen map.
func TestIngestGateSteadyStateAllocs(t *testing.T) {
	repair := newIngestGate(IngestConfig{Policy: IngestRepair, ReorderWindow: 4}, 0)
	obs, dups := gateRing(16)
	epoch := model.Epoch(0)
	repairStep := func() {
		epoch++
		i := int(epoch) % len(obs)
		obs[i].Time = epoch
		dups[i].Time = epoch
		repair.Offer(obs[i])
		repair.Offer(dups[i]) // duplicate epoch: exercises the merge path
	}
	for i := 0; i < 200; i++ {
		repairStep()
	}
	if got := testing.AllocsPerRun(500, repairStep); got != 0 {
		t.Errorf("repair gate steady state allocates %.1f allocs/op, want 0", got)
	}
	stats := repair.stats
	if stats.Merged == 0 || stats.Accepted == 0 {
		t.Fatalf("merge path not exercised: %+v", stats)
	}

	reject := newIngestGate(IngestConfig{Policy: IngestReject}, 0)
	rObs, _ := gateRing(16)
	epoch = 0
	rejectStep := func() {
		epoch++
		i := int(epoch) % len(rObs)
		rObs[i].Time = epoch
		reject.Offer(rObs[i])
		reject.Offer(rObs[i]) // stale duplicate: dropped
	}
	for i := 0; i < 200; i++ {
		rejectStep()
	}
	if got := testing.AllocsPerRun(500, rejectStep); got != 0 {
		t.Errorf("reject gate steady state allocates %.1f allocs/op, want 0", got)
	}
	if reject.stats.Stale == 0 {
		t.Fatalf("stale path not exercised: %+v", reject.stats)
	}
}
