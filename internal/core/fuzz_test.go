package core

import (
	"bytes"
	"testing"

	"spire/internal/inference"
	"spire/internal/sim"
)

// seedSnapshot builds a real snapshot of a small but non-trivial pipeline
// state, so the fuzzer starts from valid bytes rather than having to
// stumble onto the format.
func seedSnapshot(f *testing.F) []byte {
	cfg := sim.DefaultConfig()
	cfg.Duration = 60
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	sub, err := New(Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: Level2,
	})
	if err != nil {
		f.Fatal(err)
	}
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			f.Fatal(err)
		}
		if _, err := sub.ProcessEpoch(o); err != nil {
			f.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sub.Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzRestoreSnapshot: restoring arbitrary bytes must either fail cleanly
// or yield a substrate whose own snapshot is a stable fixed point — never
// panic, never half-apply.
func FuzzRestoreSnapshot(f *testing.F) {
	snap := seedSnapshot(f)
	f.Add(snap)
	trunc := append([]byte(nil), snap[:len(snap)/3]...)
	f.Add(trunc)
	flip := append([]byte(nil), snap...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sub, err := RestoreSubstrate(bytes.NewReader(data))
		if err != nil {
			if sub != nil {
				t.Fatal("RestoreSubstrate returned a substrate alongside an error")
			}
			return
		}
		var s1 bytes.Buffer
		if err := sub.Snapshot(&s1); err != nil {
			t.Fatalf("restored substrate cannot snapshot: %v", err)
		}
		sub2, err := RestoreSubstrate(bytes.NewReader(s1.Bytes()))
		if err != nil {
			t.Fatalf("own snapshot does not restore: %v", err)
		}
		var s2 bytes.Buffer
		if err := sub2.Snapshot(&s2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Fatal("snapshot/restore is not a fixed point")
		}
	})
}
