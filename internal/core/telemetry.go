package core

import (
	"spire/internal/checkpoint"
	"spire/internal/compress"
	"spire/internal/dedup"
	"spire/internal/graph"
	"spire/internal/telemetry"
)

// Instruments bundles the runtime-telemetry metrics of one substrate: the
// per-stage epoch latency histograms of the pipeline of Fig. 2 plus the
// instrument sets of the state-owning packages. It is the operational
// counterpart of Stats — Stats accumulates the paper's offline experiment
// numbers inside the substrate (and is persisted in snapshots), while
// Instruments feeds a live scrape endpoint and is deliberately external to
// all persisted state.
//
// A nil *Instruments is the disabled mode: every metric inside is nil and
// every recording call a no-op. ProcessEpoch additionally skips its
// clock reads entirely when the substrate is uninstrumented, so the
// disabled hot path is byte-for-byte the pre-telemetry code path.
type Instruments struct {
	// Stage latency histograms, one per pipeline stage
	// (spire_epoch_stage_seconds{stage=...}).
	StageIngest   *telemetry.Histogram // runner ingest gate
	StageDedup    *telemetry.Histogram // dedup + tombstone filtering
	StageUpdate   *telemetry.Histogram // stream-driven graph update
	StageInfer    *telemetry.Histogram // probabilistic inference pass
	StageConflict *telemetry.Histogram // conflict resolution
	StageCompress *telemetry.Histogram // compression + exit retirement

	Epochs   *telemetry.Counter
	Readings *telemetry.Counter
	Retired  *telemetry.Counter

	// Batched-ingest accounting: readings entering ProcessBatch
	// (spire_ingest_readings_total) and the columnar bytes they occupied
	// (spire_ingest_batch_bytes). Both stay at zero when epochs arrive
	// through ProcessEpoch directly.
	IngestReadings   *telemetry.Counter
	IngestBatchBytes *telemetry.Counter

	// Component-sharded inference accounting: components swept vs skipped
	// (spire_infer_components_total{state=dirty|clean}), nodes inferred vs
	// served from the settled-slab cache
	// (spire_infer_nodes_total{state=inferred|cached}), and the resolved
	// worker-pool width.
	InferDirty        *telemetry.Counter
	InferClean        *telemetry.Counter
	InferNodesRun     *telemetry.Counter
	InferNodesCached  *telemetry.Counter
	InferWorkersGauge *telemetry.Gauge

	Graph *graph.Instruments
	Comp  *compress.Instruments
	Dedup *dedup.Instruments
	Ckpt  *checkpoint.Instruments
}

// stageHistogram registers one child of the shared stage-latency family.
func stageHistogram(reg *telemetry.Registry, stage string) *telemetry.Histogram {
	return reg.Histogram("spire_epoch_stage_seconds",
		"Per-epoch wall-clock latency of one pipeline stage.",
		telemetry.DefLatencyBuckets, "stage", stage)
}

// NewInstruments registers the substrate metrics on reg. Returns nil when
// reg is nil.
func NewInstruments(reg *telemetry.Registry, level CompressionLevel) *Instruments {
	if reg == nil {
		return nil
	}
	levelLabel := "1"
	if level == Level2 {
		levelLabel = "2"
	}
	return &Instruments{
		StageIngest:   stageHistogram(reg, "ingest"),
		StageDedup:    stageHistogram(reg, "dedup"),
		StageUpdate:   stageHistogram(reg, "update"),
		StageInfer:    stageHistogram(reg, "inference"),
		StageConflict: stageHistogram(reg, "conflict"),
		StageCompress: stageHistogram(reg, "compress"),
		Epochs:        reg.Counter("spire_epochs_total", "Epochs processed."),
		Readings:      reg.Counter("spire_readings_total", "Raw tag readings ingested."),
		Retired:       reg.Counter("spire_objects_retired_total", "Objects retired through an exit location."),
		IngestReadings: reg.Counter("spire_ingest_readings_total",
			"Raw readings entering the batched ingest path."),
		IngestBatchBytes: reg.Counter("spire_ingest_batch_bytes",
			"Columnar bytes of epoch batches entering the batched ingest path."),
		InferDirty: reg.Counter("spire_infer_components_total",
			"Connected components handled by an inference pass, by state.", "state", "dirty"),
		InferClean: reg.Counter("spire_infer_components_total",
			"Connected components handled by an inference pass, by state.", "state", "clean"),
		InferNodesRun: reg.Counter("spire_infer_nodes_total",
			"Nodes handled by an inference pass, by state.", "state", "inferred"),
		InferNodesCached: reg.Counter("spire_infer_nodes_total",
			"Nodes handled by an inference pass, by state.", "state", "cached"),
		InferWorkersGauge: reg.Gauge("spire_infer_workers",
			"Resolved inference worker-pool width of the last pass."),
		Graph: graph.NewInstruments(reg),
		Comp:  compress.NewInstruments(reg, levelLabel),
		Dedup: dedup.NewInstruments(reg),
		Ckpt:  checkpoint.NewInstruments(reg),
	}
}

// Instrument wires the substrate (and its dedup module) to a telemetry
// registry. A nil registry disables instrumentation; the call is cheap and
// may be repeated (e.g. after a restore, which builds a fresh substrate).
// Instrumentation is observation-only: the transparency tests pin that an
// instrumented run produces byte-identical output streams and snapshots.
func (s *Substrate) Instrument(reg *telemetry.Registry) *Instruments {
	s.tel = NewInstruments(reg, s.cfg.Compression)
	if s.tel == nil {
		s.dedup.Instrument(nil)
	} else {
		s.dedup.Instrument(s.tel.Dedup)
	}
	return s.tel
}

// Telemetry returns the attached instruments (nil when uninstrumented).
func (s *Substrate) Telemetry() *Instruments { return s.tel }
