package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/sim"
)

// The batch feed channel (Runner.RunBatches) is a pure representation
// change: for every ingest width and policy it must reproduce Run's
// event stream, snapshots, query store, and ingest stats bit for bit.
// These tests are the feed adapter's differential suite; the fuzz target
// extends it to fault-injected deliveries.

// runBatchesTrace drives RunBatches over a clean trace in lockstep (send
// one batch, wait for its output) so mid-run snapshots can be taken with
// the substrate quiescent. Two batches alternate as the feed's scratch,
// exercising the documented reuse discipline: a sent batch is dead to
// the sender until the runner has received the next one.
func runBatchesTrace(t *testing.T, sub *Substrate, trace []*model.Observation, mid, workers int) (perEpoch [][]event.Event, closing []event.Event, midSnap, endSnap []byte) {
	t.Helper()
	sub.SetIngestWorkers(workers)
	r := NewRunner(sub)
	in := make(chan *model.Batch)
	out := make(chan *EpochOutput)
	errc := make(chan error, 1)
	go func() { errc <- r.RunBatches(context.Background(), in, out) }()

	var bufs [2]model.Batch
	perEpoch = make([][]event.Event, len(trace))
	for i, o := range trace {
		in <- bufs[i%2].FromObservation(o.Clone())
		po := <-out
		perEpoch[i] = append([]event.Event(nil), po.Events...)
		if i == mid {
			zeroWallClock(sub) // snapshots embed wall-clock stage timings
			var buf bytes.Buffer
			if err := sub.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			midSnap = buf.Bytes()
		}
	}
	close(in)
	for po := range out {
		closing = append(closing, po.Events...)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	zeroWallClock(sub)
	var buf bytes.Buffer
	if err := sub.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return perEpoch, closing, midSnap, buf.Bytes()
}

// TestRunBatchesByteIdentity pins the batch feed against the
// ProcessEpoch reference across ingest widths {0, 1, 4} at both
// compression levels: events, mid-run and final snapshots, and the
// query store fed from the output stream.
func TestRunBatchesByteIdentity(t *testing.T) {
	trace, s := buildTrace(t, 120)
	mid := len(trace) / 2
	for _, level := range []CompressionLevel{Level1, Level2} {
		t.Run(fmt.Sprintf("level%d", level), func(t *testing.T) {
			ref := newSubstrate(t, s, level)
			refEpochs, refClosing, refMid, refEnd := runTraceSnap(t, ref, trace, mid)
			refFull := flatten(refEpochs, refClosing)
			refBytes := encodeEvents(t, refFull)
			refStore := feedStore(t, refFull)
			if len(refBytes) == 0 {
				t.Fatal("reference run produced no events")
			}

			for _, workers := range []int{0, 1, 4} {
				name := fmt.Sprintf("ingest-workers=%d", workers)
				sub := newSubstrate(t, s, level)
				perEpoch, closing, midSnap, endSnap := runBatchesTrace(t, sub, trace, mid, workers)
				full := flatten(perEpoch, closing)
				if !bytes.Equal(encodeEvents(t, full), refBytes) {
					t.Fatalf("%s: RunBatches event stream differs from reference (%d vs %d events)",
						name, len(full), len(refFull))
				}
				if !bytes.Equal(midSnap, refMid) {
					t.Fatalf("%s: mid-run snapshot differs from reference", name)
				}
				if !bytes.Equal(endSnap, refEnd) {
					t.Fatalf("%s: final snapshot differs from reference", name)
				}
				compareStores(t, feedStore(t, full), refStore, name)
			}
		})
	}
}

// runBatchesGated drives RunBatches over an arbitrary (possibly faulted)
// delivery sequence, mirroring runGated for the observation feed.
func runBatchesGated(t *testing.T, sub *Substrate, cfg RunnerConfig, delivery []*model.Observation) ([]event.Event, IngestStats) {
	t.Helper()
	r := NewRunnerConfigured(sub, cfg)
	in := make(chan *model.Batch)
	out := make(chan *EpochOutput, 1)
	errc := make(chan error, 1)
	go func() { errc <- r.RunBatches(context.Background(), in, out) }()
	var evs []event.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for po := range out {
			evs = append(evs, po.Events...)
		}
	}()
	var bufs [2]model.Batch
	for i, o := range delivery {
		in <- bufs[i%2].FromObservation(o.Clone())
	}
	close(in)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	<-done
	return evs, r.IngestStats()
}

// TestRunBatchesGatePolicyParity pins that the batch feed's direct gate
// (strict/reject) and its repair staging produce the same events and the
// same ingest stats as Run over a faulted delivery.
func TestRunBatchesGatePolicyParity(t *testing.T) {
	trace, s := buildTrace(t, 150)
	inj := sim.NewFaultInjector(sim.FaultConfig{
		Seed:          11,
		DuplicateRate: 0.25,
		SwapRate:      0.20,
		DropEpochRate: 0.05,
	})
	delivery := inj.Apply(trace)

	for _, policy := range []IngestPolicy{IngestReject, IngestRepair} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := RunnerConfig{Ingest: IngestConfig{Policy: policy}}
			wantEvs, wantStats := runGated(t, newSubstrate(t, s, Level2), cfg, delivery)
			gotEvs, gotStats := runBatchesGated(t, newSubstrate(t, s, Level2), cfg, delivery)
			if !bytes.Equal(encodeEvents(t, gotEvs), encodeEvents(t, wantEvs)) {
				t.Fatalf("event stream differs from Run (%d vs %d events)", len(gotEvs), len(wantEvs))
			}
			if gotStats != wantStats {
				t.Fatalf("ingest stats differ: RunBatches %+v, Run %+v", gotStats, wantStats)
			}
		})
	}

	// Strict on the clean trace (a faulted one would error both paths).
	t.Run("strict", func(t *testing.T) {
		wantEvs, wantStats := runGated(t, newSubstrate(t, s, Level2), RunnerConfig{}, trace)
		gotEvs, gotStats := runBatchesGated(t, newSubstrate(t, s, Level2), RunnerConfig{}, trace)
		if !bytes.Equal(encodeEvents(t, gotEvs), encodeEvents(t, wantEvs)) {
			t.Fatalf("event stream differs from Run (%d vs %d events)", len(gotEvs), len(wantEvs))
		}
		if gotStats != wantStats {
			t.Fatalf("ingest stats differ: RunBatches %+v, Run %+v", gotStats, wantStats)
		}
	})
}

// FuzzZoneBatchFeedEquivalence fuzzes fault-injected deliveries through
// both Runner entry points — Run staging observations, RunBatches on the
// zero-copy feed — under the reject and repair policies at several
// ingest widths, demanding identical event streams, snapshots, and gate
// stats. The committed corpus keeps CI's fuzz-smoke on known-hard
// delivery shapes (dropout bursts straddling the reorder window).
func FuzzZoneBatchFeedEquivalence(f *testing.F) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 80
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var trace []*model.Observation
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			f.Fatal(err)
		}
		trace = append(trace, o)
	}

	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0), byte(0), false)
	f.Add(int64(2), byte(30), byte(30), byte(10), byte(10), byte(3), true)
	f.Add(int64(5), byte(12), byte(45), byte(3), byte(17), byte(4), false)
	f.Fuzz(func(t *testing.T, seed int64, dup, swap, drop, burstEvery, burstLen byte, repair bool) {
		fcfg := sim.FaultConfig{
			Seed:          seed,
			DuplicateRate: float64(dup%64) / 100,
			SwapRate:      float64(swap%64) / 100,
			DropEpochRate: float64(drop%32) / 100,
			DropoutEvery:  model.Epoch(burstEvery % 20),
			DropoutLen:    model.Epoch(burstLen % 5),
		}
		delivery := sim.NewFaultInjector(fcfg).Apply(trace)
		policy := IngestReject
		if repair {
			policy = IngestRepair
		}
		rcfg := RunnerConfig{Ingest: IngestConfig{Policy: policy}}

		refSub := newSubstrate(t, s, Level2)
		refEvs, refStats := runGated(t, refSub, rcfg, delivery)
		refBytes := encodeEvents(t, refEvs)
		zeroWallClock(refSub)
		var refSnap bytes.Buffer
		if err := refSub.Snapshot(&refSnap); err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 4, 0} {
			sub := newSubstrate(t, s, Level2)
			sub.SetIngestWorkers(workers)
			evs, stats := runBatchesGated(t, sub, rcfg, delivery)
			if !bytes.Equal(encodeEvents(t, evs), refBytes) {
				t.Fatalf("ingest-workers=%d: batch feed output differs from Run", workers)
			}
			if stats != refStats {
				t.Fatalf("ingest-workers=%d: stats differ: %+v vs %+v", workers, stats, refStats)
			}
			zeroWallClock(sub)
			var snap bytes.Buffer
			if err := sub.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), refSnap.Bytes()) {
				t.Fatalf("ingest-workers=%d: snapshot after batch feed differs", workers)
			}
		}
	})
}
