package core

import (
	"context"
	"fmt"

	"spire/internal/model"
)

// Runner drives a Substrate from a channel of observations — the natural
// shape for wiring SPIRE between a live reader feed and downstream
// consumers. The substrate itself is single-threaded (epochs are causally
// dependent), so the runner owns it exclusively; concurrency lives at the
// channel boundaries.
type Runner struct {
	sub *Substrate
}

// NewRunner wraps a substrate. The substrate must not be used elsewhere
// while the runner is active.
func NewRunner(sub *Substrate) *Runner { return &Runner{sub: sub} }

// Run consumes observations until the input channel closes or the context
// is cancelled, sending each epoch's output downstream. On clean input
// exhaustion it emits a final EpochOutput carrying only the stream-closing
// events (with Result == nil) before closing the output channel.
//
// The returned error is nil on a clean run, the context's error on
// cancellation, or the first processing error otherwise. The output
// channel is always closed before Run returns.
func (r *Runner) Run(ctx context.Context, in <-chan *model.Observation, out chan<- *EpochOutput) error {
	defer close(out)
	var last model.Epoch
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case o, ok := <-in:
			if !ok {
				closing := r.sub.Close(last + 1)
				if len(closing) > 0 {
					final := &EpochOutput{Events: closing}
					select {
					case out <- final:
					case <-ctx.Done():
						return ctx.Err()
					}
				}
				return nil
			}
			po, err := r.sub.ProcessEpoch(o)
			if err != nil {
				return fmt.Errorf("core: epoch %d: %w", o.Time, err)
			}
			// The substrate reuses its result buffers across epochs; the
			// channel hands po to a consumer that may still be reading it
			// when the next epoch is processed, so detach the results here.
			po.Result = po.Result.Clone()
			po.RawResult = po.RawResult.Clone()
			last = o.Time
			select {
			case out <- po:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}
