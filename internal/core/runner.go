package core

import (
	"context"
	"fmt"
	"time"

	"spire/internal/model"
)

// RunnerConfig adds durability and ingest hardening to a Runner.
type RunnerConfig struct {
	// CheckpointPath, when set, makes the runner write an atomic snapshot
	// of the substrate there every CheckpointEvery processed epochs and at
	// clean end of input.
	CheckpointPath string
	// CheckpointEvery is the checkpoint period in processed epochs; zero
	// disables periodic checkpoints (the end-of-input checkpoint is still
	// written when CheckpointPath is set).
	CheckpointEvery int
	// Ingest selects the malformed-input policy.
	Ingest IngestConfig
}

// Runner drives a Substrate from a channel of observations — the natural
// shape for wiring SPIRE between a live reader feed and downstream
// consumers. The substrate itself is single-threaded (epochs are causally
// dependent), so the runner owns it exclusively; concurrency lives at the
// channel boundaries.
type Runner struct {
	sub       *Substrate
	cfg       RunnerConfig
	gate      *ingestGate
	sinceCkpt int

	// batch is the reused columnar staging buffer: every gated
	// observation is converted once and processed through the batched
	// ingest path, so the runner's steady state allocates no per-epoch
	// reading storage.
	batch model.Batch
}

// NewRunner wraps a substrate with default behavior (strict ingest, no
// checkpoints). The substrate must not be used elsewhere while the runner
// is active.
func NewRunner(sub *Substrate) *Runner {
	return NewRunnerConfigured(sub, RunnerConfig{})
}

// NewRunnerConfigured wraps a substrate with the given runner
// configuration. The ingest gate starts at the substrate's last processed
// epoch, so a runner over a restored substrate treats already-processed
// epochs as stale under the reject/repair policies.
func NewRunnerConfigured(sub *Substrate, cfg RunnerConfig) *Runner {
	return &Runner{
		sub:  sub,
		cfg:  cfg,
		gate: newIngestGate(cfg.Ingest, sub.LastEpoch()),
	}
}

// IngestStats reports the ingest gate's decisions so far.
func (r *Runner) IngestStats() IngestStats { return r.gate.stats }

// Run consumes observations until the input channel closes or the context
// is cancelled, sending each epoch's output downstream. On clean input
// exhaustion it emits a final EpochOutput carrying only the stream-closing
// events (with Result == nil) before closing the output channel.
//
// The returned error is nil on a clean run, the context's error on
// cancellation, or the first processing error otherwise. The output
// channel is always closed before Run returns.
func (r *Runner) Run(ctx context.Context, in <-chan *model.Observation, out chan<- *EpochOutput) error {
	defer close(out)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case o, ok := <-in:
			if !ok {
				return r.finish(ctx, out)
			}
			if err := r.process(ctx, r.offerGate(o), out); err != nil {
				return err
			}
		}
	}
}

// RunBatches is Run for a columnar feed: it consumes batches until the
// input channel closes or the context is cancelled, bypassing the
// observation staging entirely — the batch handed in is processed in
// place (and consumed: the substrate compacts its columns), so a sender
// reusing one batch per epoch must not touch it again until the runner
// has received the next one. That is the stream.BatchReader scratch
// discipline, and what lets a zone worker feed its substrate with zero
// per-epoch reading allocation.
//
// The ingest gate applies exactly as in Run: strict and reject gate the
// batch directly; repair (which must buffer and merge across epochs)
// stages through an observation, trading the zero-copy path for the
// reorder window. Outputs, stats, checkpoints, and the closing tail are
// byte-identical to Run over the equivalent observation stream — the
// differential suite pins this.
func (r *Runner) RunBatches(ctx context.Context, in <-chan *model.Batch, out chan<- *EpochOutput) error {
	defer close(out)
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case b, ok := <-in:
			if !ok {
				return r.finish(ctx, out)
			}
			if err := r.offerBatch(ctx, b, out); err != nil {
				return err
			}
		}
	}
}

// finish runs the end-of-input tail shared by Run and RunBatches: drain
// the gate, emit the stream-closing events, and take the final
// checkpoint.
func (r *Runner) finish(ctx context.Context, out chan<- *EpochOutput) error {
	if err := r.process(ctx, r.drainGate(), out); err != nil {
		return err
	}
	closing := r.sub.Close(r.sub.LastEpoch() + 1)
	if len(closing) > 0 {
		final := &EpochOutput{Events: closing}
		select {
		case out <- final:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if r.cfg.CheckpointPath != "" {
		if err := r.sub.SnapshotToFile(r.cfg.CheckpointPath); err != nil {
			return fmt.Errorf("core: final checkpoint: %w", err)
		}
	}
	return nil
}

// offerBatch applies the ingest gate to one batch and processes it. The
// strict and reject policies need only the epoch ordering decision, so
// they run on the batch directly; repair stages through an observation
// because its reorder buffer holds epochs across calls.
func (r *Runner) offerBatch(ctx context.Context, b *model.Batch, out chan<- *EpochOutput) error {
	if r.gate.cfg.Policy == IngestRepair {
		return r.process(ctx, r.offerGate(b.Observation()), out)
	}
	tel, rec := r.sub.tel, r.sub.rec
	var start time.Time
	if tel != nil || rec != nil {
		start = time.Now()
	}
	accept := true
	if r.gate.cfg.Policy == IngestReject && b.Time <= r.gate.last {
		r.gate.stats.Stale++
		accept = false
	} else {
		r.gate.last = b.Time
		r.gate.stats.Accepted++
	}
	if tel != nil || rec != nil {
		d := time.Since(start)
		if tel != nil {
			tel.StageIngest.Observe(d.Seconds())
		}
		rec.ObserveIngest(d.Nanoseconds())
	}
	if !accept {
		return nil
	}
	return r.processOne(ctx, b, out)
}

// offerGate and drainGate run the ingest gate, recording the stage latency
// when the substrate is instrumented or traced.
func (r *Runner) offerGate(o *model.Observation) []*model.Observation {
	tel, rec := r.sub.tel, r.sub.rec
	if tel == nil && rec == nil {
		return r.gate.Offer(o)
	}
	start := time.Now()
	obs := r.gate.Offer(o)
	d := time.Since(start)
	if tel != nil {
		tel.StageIngest.Observe(d.Seconds())
	}
	rec.ObserveIngest(d.Nanoseconds())
	return obs
}

func (r *Runner) drainGate() []*model.Observation {
	tel, rec := r.sub.tel, r.sub.rec
	if tel == nil && rec == nil {
		return r.gate.Drain()
	}
	start := time.Now()
	obs := r.gate.Drain()
	d := time.Since(start)
	if tel != nil {
		tel.StageIngest.Observe(d.Seconds())
	}
	rec.ObserveIngest(d.Nanoseconds())
	return obs
}

// process runs the substrate over gated observations, forwards the
// outputs, and takes periodic checkpoints.
func (r *Runner) process(ctx context.Context, obs []*model.Observation, out chan<- *EpochOutput) error {
	for _, o := range obs {
		if err := r.processOne(ctx, r.batch.FromObservation(o), out); err != nil {
			return err
		}
	}
	return nil
}

// processOne runs the substrate over one gated batch, forwards the
// output, and takes a periodic checkpoint when due.
func (r *Runner) processOne(ctx context.Context, b *model.Batch, out chan<- *EpochOutput) error {
	epoch := b.Time
	po, err := r.sub.ProcessBatch(b)
	if err != nil {
		return fmt.Errorf("core: epoch %d: %w", epoch, err)
	}
	// The substrate reuses its result buffers across epochs; the
	// channel hands po to a consumer that may still be reading it
	// when the next epoch is processed, so detach the results here.
	po.Result = po.Result.Clone()
	po.RawResult = po.RawResult.Clone()
	select {
	case out <- po:
	case <-ctx.Done():
		return ctx.Err()
	}
	if r.cfg.CheckpointPath != "" && r.cfg.CheckpointEvery > 0 {
		r.sinceCkpt++
		if r.sinceCkpt >= r.cfg.CheckpointEvery {
			if err := r.sub.SnapshotToFile(r.cfg.CheckpointPath); err != nil {
				return fmt.Errorf("core: checkpoint at epoch %d: %w", epoch, err)
			}
			r.sinceCkpt = 0
		}
	}
	return nil
}
