package core

import "spire/internal/trace"

// Trace attaches a decision-provenance recorder to the substrate and every
// module that makes tag-level decisions (graph update, inference, conflict
// resolution, compression). A nil recorder disables tracing; the call is
// cheap and may be repeated (e.g. after a restore, which builds a fresh
// substrate). Like telemetry, tracing is observation-only: the
// transparency tests pin that a traced run produces byte-identical output
// streams and snapshots.
func (s *Substrate) Trace(rec *trace.Recorder) {
	s.rec = rec
	s.graph.SetTracer(rec)
	s.inf.SetTracer(rec)
	s.comp.SetTracer(rec)
}

// Tracer returns the attached recorder (nil when untraced).
func (s *Substrate) Tracer() *trace.Recorder { return s.rec }
