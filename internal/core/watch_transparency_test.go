package core

import (
	"bytes"
	"testing"

	"spire/internal/cep"
	"spire/internal/event"
	"spire/internal/query"
	"spire/internal/sim"
)

// Watcher transparency: the subscription path is observation-only, like
// telemetry and tracing before it. A run with a watcher attached — filter
// subscribers plus a live cep engine with matching subscriptions, the
// worst case — must be indistinguishable from an unwatched run in the
// event stream, the query store, and the checkpoint bytes.

// watchedEngine builds a watcher with one broad filter subscriber, a cep
// engine holding a match-everything subscription (every event anchors and
// completes, so the engine's full run machinery executes), and a theft
// detector. Returns the watcher, engine, and a counter of filtered events.
func watchedEngine(t *testing.T) (*query.Watcher, *cep.Engine, *int) {
	t.Helper()
	w := query.NewWatcher()
	seen := 0
	w.Subscribe(query.Filter{}, func(event.Event) { seen++ })
	e := cep.NewEngine(cep.Config{})
	if _, err := e.Subscribe("SEQ(any())"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Subscribe(cep.TheftPattern(40)); err != nil {
		t.Fatal(err)
	}
	e.Attach(w)
	return w, e, &seen
}

func testWatchTransparency(t *testing.T, level CompressionLevel) {
	obsTrace, s := buildTrace(t, 150)
	end := obsTrace[len(obsTrace)-1].Time + 1

	run := func(w *query.Watcher) (*Substrate, []event.Event) {
		sub := newSubstrate(t, s, level)
		sub.Watch(w)
		var evs []event.Event
		for _, o := range obsTrace {
			out, err := sub.ProcessEpoch(o.Clone())
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, out.Events...)
		}
		evs = append(evs, sub.Close(end)...)
		return sub, evs
	}

	plainSub, plainEvs := run(nil)
	w, e, seen := watchedEngine(t)
	watchedSub, watchedEvs := run(w)

	plainBytes := encodeEvents(t, plainEvs)
	if len(plainBytes) == 0 {
		t.Fatal("reference run produced no events")
	}
	if !bytes.Equal(plainBytes, encodeEvents(t, watchedEvs)) {
		t.Fatalf("watched event stream differs (%d vs %d events)",
			len(watchedEvs), len(plainEvs))
	}
	compareStores(t, feedStore(t, watchedEvs), feedStore(t, plainEvs), "watched run")

	zeroWallClock(plainSub)
	zeroWallClock(watchedSub)
	var plainSnap, watchedSnap bytes.Buffer
	if err := plainSub.Snapshot(&plainSnap); err != nil {
		t.Fatal(err)
	}
	if err := watchedSub.Snapshot(&watchedSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainSnap.Bytes(), watchedSnap.Bytes()) {
		t.Fatal("watched checkpoint differs from unwatched checkpoint")
	}

	// Guard against vacuous success: the filter subscriber and the engine
	// must both have actually seen the stream.
	if *seen != len(watchedEvs) {
		t.Errorf("filter subscriber saw %d events, want %d", *seen, len(watchedEvs))
	}
	subs := e.Subscriptions()
	if len(subs) != 2 {
		t.Fatalf("engine lists %d subscriptions, want 2", len(subs))
	}
	var total uint64
	for _, st := range subs {
		total += st.Matches
	}
	if total < uint64(len(watchedEvs)) {
		t.Errorf("engine recorded %d matches over %d events; the any() subscription must match every event",
			total, len(watchedEvs))
	}
}

func TestWatchTransparencyLevel1(t *testing.T) { testWatchTransparency(t, Level1) }
func TestWatchTransparencyLevel2(t *testing.T) { testWatchTransparency(t, Level2) }

// TestGoldenScenariosWatched reruns the golden corpus — both compression
// levels, the reject and repair ingest policies over faulted deliveries —
// with a live watcher and engine, and requires the committed digests to
// hold: subscriptions must not move a single output byte on the runner
// path either.
func TestGoldenScenariosWatched(t *testing.T) {
	if *updateGolden {
		t.Skip("golden digests being rewritten; the unwatched run owns them")
	}
	obsTrace, s := buildTrace(t, 200)
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			delivery := obsTrace
			if sc.faults != nil {
				delivery = sim.NewFaultInjector(*sc.faults).Apply(obsTrace)
			}

			plain, _ := runGated(t, newSubstrate(t, s, sc.level),
				RunnerConfig{Ingest: sc.ingest}, delivery)

			w, _, _ := watchedEngine(t)
			sub := newSubstrate(t, s, sc.level)
			sub.Watch(w)
			watched, _ := runGated(t, sub, RunnerConfig{Ingest: sc.ingest}, delivery)

			if !bytes.Equal(encodeEvents(t, plain), encodeEvents(t, watched)) {
				t.Fatalf("%s: watched run changed the golden output stream", sc.name)
			}
		})
	}
}

// TestWatchDispatchZeroAllocs pins the idle-dispatch overhead bar: with
// subscriptions registered but none matching — a filter on an object that
// never appears and a cep pattern anchored on a tag that never occurs —
// delivering a full epoch of events through the watcher and engine
// allocates nothing. This is the cost every pipeline pays per epoch for
// having the subscription surface wired but quiet.
func TestWatchDispatchZeroAllocs(t *testing.T) {
	obsTrace, s := buildTrace(t, 150)
	sub := newSubstrate(t, s, Level2)

	w := query.NewWatcher()
	w.Subscribe(query.Filter{Object: 0xdeadbeef}, func(event.Event) {
		t.Fatal("filter on an absent object must never fire")
	})
	e := cep.NewEngine(cep.Config{})
	if _, err := e.Subscribe("SEQ(any() & tag(3735928559), NOT any()) WITHIN 10"); err != nil {
		t.Fatal(err)
	}
	e.Attach(w)
	sub.Watch(w)

	// Warm through the trace, collecting one representative busy epoch.
	var busy []event.Event
	now := obsTrace[len(obsTrace)-1].Time
	for _, o := range obsTrace {
		out, err := sub.ProcessEpoch(o.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Events) > len(busy) {
			busy = append(busy[:0], out.Events...)
		}
	}
	if len(busy) == 0 {
		t.Fatal("trace produced no busy epoch")
	}

	allocs := testing.AllocsPerRun(200, func() {
		now++
		w.BeginEpoch(now)
		w.Dispatch(busy...)
		w.EndEpoch(now)
	})
	if allocs != 0 {
		t.Errorf("idle dispatch allocates %.1f allocs/op over %d events, want 0", allocs, len(busy))
	}
}
