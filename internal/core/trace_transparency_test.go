package core

import (
	"bytes"
	"testing"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/trace"
)

// Tracing transparency: like telemetry, decision-provenance recording is
// observation-only. A run with a live recorder (tracing every tag, the
// worst case) and an untraced run must be indistinguishable in the event
// stream, the query store, and the checkpoint bytes. These tests extend
// the instrumentation-transparency suite to the trace layer.

func testTraceTransparency(t *testing.T, level CompressionLevel) {
	obsTrace, s := buildTrace(t, 150)
	end := obsTrace[len(obsTrace)-1].Time + 1

	run := func(rec *trace.Recorder) (*Substrate, []event.Event) {
		sub := newSubstrate(t, s, level)
		sub.Trace(rec)
		var evs []event.Event
		for _, o := range obsTrace {
			out, err := sub.ProcessEpoch(o.Clone())
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, out.Events...)
		}
		evs = append(evs, sub.Close(end)...)
		return sub, evs
	}

	plainSub, plainEvs := run(nil)
	rec := trace.New(trace.Config{All: true})
	tracedSub, tracedEvs := run(rec)

	plainBytes := encodeEvents(t, plainEvs)
	if len(plainBytes) == 0 {
		t.Fatal("reference run produced no events")
	}
	if !bytes.Equal(plainBytes, encodeEvents(t, tracedEvs)) {
		t.Fatalf("traced event stream differs (%d vs %d events)",
			len(tracedEvs), len(plainEvs))
	}
	compareStores(t, feedStore(t, tracedEvs), feedStore(t, plainEvs), "traced run")

	zeroWallClock(plainSub)
	zeroWallClock(tracedSub)
	var plainSnap, tracedSnap bytes.Buffer
	if err := plainSub.Snapshot(&plainSnap); err != nil {
		t.Fatal(err)
	}
	if err := tracedSub.Snapshot(&tracedSnap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainSnap.Bytes(), tracedSnap.Bytes()) {
		t.Fatal("traced checkpoint differs from untraced checkpoint")
	}

	// Guard against vacuous success: the recorder must actually have
	// recorded — a span per epoch and provenance for some tags.
	spans := rec.Spans()
	if len(spans) != len(obsTrace) {
		t.Errorf("flight recorder holds %d spans, want %d", len(spans), len(obsTrace))
	}
	for _, sp := range spans {
		if sp.UpdateNS <= 0 || sp.InferNS <= 0 {
			t.Fatalf("span %d missing stage timings: %+v", sp.Epoch, sp)
		}
	}
	if len(rec.TracedTags()) == 0 {
		t.Error("no tags recorded provenance in an all-tags traced run")
	}
}

func TestTraceTransparencyLevel1(t *testing.T) { testTraceTransparency(t, Level1) }
func TestTraceTransparencyLevel2(t *testing.T) { testTraceTransparency(t, Level2) }

// TestTraceTransparencyRunner covers the runner path — the ingest gate
// under the repair policy over a faulted delivery — with tracing on, which
// exercises the ObserveIngest wrapper the substrate-level test cannot.
func TestTraceTransparencyRunner(t *testing.T) {
	obsTrace, s := buildTrace(t, 150)
	inj := sim.NewFaultInjector(sim.FaultConfig{
		Seed:          7,
		DuplicateRate: 0.15,
		SwapRate:      0.15,
	})
	delivery := inj.Apply(obsTrace)
	cfg := RunnerConfig{Ingest: IngestConfig{Policy: IngestRepair}}

	plain, _ := runGated(t, newSubstrate(t, s, Level2), cfg, delivery)

	rec := trace.New(trace.Config{All: true})
	tracedSub := newSubstrate(t, s, Level2)
	tracedSub.Trace(rec)
	traced, _ := runGated(t, tracedSub, cfg, delivery)

	if !bytes.Equal(encodeEvents(t, plain), encodeEvents(t, traced)) {
		t.Fatalf("traced runner stream differs (%d vs %d events)", len(traced), len(plain))
	}
	var sawIngest bool
	for _, sp := range rec.Spans() {
		if sp.IngestNS > 0 {
			sawIngest = true
			break
		}
	}
	if !sawIngest {
		t.Error("no span carries ingest time through the traced runner")
	}
}

// TestGoldenScenariosTraced reruns the golden corpus with every tag
// traced and requires the committed digests to hold — tracing must not
// move a single output byte in any scenario — and then requires Explain
// to name a mechanism for every object that appeared in the output.
func TestGoldenScenariosTraced(t *testing.T) {
	if *updateGolden {
		t.Skip("golden digests being rewritten; the untraced run owns them")
	}
	obsTrace, s := buildTrace(t, 200)
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			delivery := obsTrace
			if sc.faults != nil {
				delivery = sim.NewFaultInjector(*sc.faults).Apply(obsTrace)
			}

			plain, _ := runGated(t, newSubstrate(t, s, sc.level),
				RunnerConfig{Ingest: sc.ingest}, delivery)

			rec := trace.New(trace.Config{All: true})
			sub := newSubstrate(t, s, sc.level)
			sub.Trace(rec)
			traced, _ := runGated(t, sub, RunnerConfig{Ingest: sc.ingest}, delivery)

			if !bytes.Equal(encodeEvents(t, plain), encodeEvents(t, traced)) {
				t.Fatalf("%s: traced run changed the golden output stream", sc.name)
			}

			// Every object the output stream mentions must be explainable:
			// a causal chain with at least one step naming its mechanism
			// and paper citation.
			tags := map[model.Tag]bool{}
			for _, e := range traced {
				tags[e.Object] = true
				if e.Kind.Containment() && e.Container != model.NoTag {
					tags[e.Container] = true
				}
			}
			if len(tags) == 0 {
				t.Fatal("scenario produced no objects")
			}
			for g := range tags {
				ex := rec.Explain(g)
				if ex == nil || len(ex.Chain) == 0 {
					t.Errorf("%s: no explanation for tag %d", sc.name, g)
					continue
				}
				for _, step := range ex.Chain {
					if step.Mechanism == "" || step.Citation == "" {
						t.Errorf("%s: tag %d step lacks mechanism/citation: %+v", sc.name, g, step)
					}
				}
			}
		})
	}
}
