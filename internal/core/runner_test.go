package core

import (
	"context"
	"testing"
	"time"

	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/sim"
)

func TestRunnerProcessesStream(t *testing.T) {
	s := fastSim(t, func(c *sim.Config) { c.Duration = 120 })
	sub := newSubstrate(t, s, Level1)
	r := NewRunner(sub)

	in := make(chan *model.Observation, 8)
	out := make(chan *EpochOutput, 8)
	errc := make(chan error, 1)
	go func() { errc <- r.Run(context.Background(), in, out) }()

	go func() {
		defer close(in)
		for !s.Done() {
			o, err := s.Step()
			if err != nil {
				t.Error(err)
				return
			}
			in <- o
		}
	}()

	var all []event.Event
	epochs := 0
	sawFinal := false
	for po := range out {
		all = append(all, po.Events...)
		if po.Result == nil {
			sawFinal = true
		} else {
			epochs++
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if epochs != 120 {
		t.Errorf("processed %d epochs, want 120", epochs)
	}
	if !sawFinal {
		t.Error("expected a final closing output")
	}
	if err := event.CheckWellFormed(all, true); err != nil {
		t.Fatalf("stream: %v", err)
	}
}

func TestRunnerCancellation(t *testing.T) {
	s := fastSim(t, nil)
	sub := newSubstrate(t, s, Level1)
	r := NewRunner(sub)
	ctx, cancel := context.WithCancel(context.Background())

	in := make(chan *model.Observation) // unbuffered: runner will block on receive
	out := make(chan *EpochOutput)
	errc := make(chan error, 1)
	go func() { errc <- r.Run(ctx, in, out) }()
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("runner did not observe cancellation")
	}
	if _, ok := <-out; ok {
		t.Error("output channel must be closed after cancellation")
	}
}

func TestRunnerPropagatesProcessingError(t *testing.T) {
	s := fastSim(t, nil)
	sub := newSubstrate(t, s, Level1)
	r := NewRunner(sub)
	in := make(chan *model.Observation, 2)
	out := make(chan *EpochOutput, 2)
	bad := model.NewObservation(1)
	bad.Add(12345, 1) // unknown reader
	in <- bad
	close(in)
	errc := make(chan error, 1)
	go func() { errc <- r.Run(context.Background(), in, out) }()
	for range out {
	}
	if err := <-errc; err == nil {
		t.Fatal("processing error must propagate")
	}
}
