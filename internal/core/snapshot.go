package core

import (
	"fmt"
	"io"
	"time"

	"spire/internal/checkpoint"
	"spire/internal/compress"
	"spire/internal/graph"
	"spire/internal/model"
)

// Snapshot/restore for the whole substrate.
//
// A snapshot is self-contained: it carries the substrate configuration
// (readers, locations, inference parameters) followed by every piece of
// cumulative state — the last processed epoch, accumulated stats,
// tombstones, dedup history, the colored graph, and the compressor's
// open intervals. RestoreSubstrate therefore needs nothing but the
// snapshot bytes, and a restored substrate continues the event stream
// byte-identically to a process that never died.
//
// Derived state is rebuilt, not stored: the reader index and order, the
// exit set, the inference schedule (LCM of reader periods), and the
// inference scratch buffers all come back from the configuration. The
// per-epoch inference edge scratch (InferProb/InferStamp) is deliberately
// dropped — the pass counter restarts with the process, so persisting
// stamps could collide with fresh passes.

const (
	sectionConfig    = "CONF"
	sectionSubstrate = "SUBS"
)

// Minimum encoded sizes for count validation.
const (
	readerEncSize   = 8 + 8 + 8 + 8 + 1 + 1
	locationEncSize = 8 + 8 + 1 // ID + name length prefix + exit flag
)

func encodeConfig(e *checkpoint.Encoder, cfg *Config) {
	e.Section(sectionConfig)
	e.Uint64(uint64(len(cfg.Readers)))
	for i := range cfg.Readers {
		r := &cfg.Readers[i]
		e.Int64(int64(r.ID))
		e.Int64(int64(r.Location))
		e.Int64(int64(r.Period))
		e.Float64(r.ReadRate)
		e.Bool(r.Confirming)
		e.Uint8(uint8(r.ConfirmLevel))
	}
	e.Uint64(uint64(len(cfg.Locations)))
	for i := range cfg.Locations {
		l := &cfg.Locations[i]
		e.Int64(int64(l.ID))
		e.String(l.Name)
		e.Bool(l.Exit)
	}
	e.Uint64(uint64(cfg.Graph.HistorySize))
	e.Float64(cfg.Inference.Alpha)
	e.Float64(cfg.Inference.Beta)
	e.Bool(cfg.Inference.AdaptiveBeta)
	e.Float64(cfg.Inference.Gamma)
	e.Float64(cfg.Inference.Theta)
	e.Float64(cfg.Inference.PruneThreshold)
	e.Int64(int64(cfg.Inference.PartialHops))
	e.Uint8(uint8(cfg.Compression))
	e.Int64(int64(cfg.WarmupLocation))
	e.Bool(cfg.KeepRawResult)
	e.Int64(int64(cfg.DedupStaleness))
}

func decodeConfig(d *checkpoint.Decoder) (Config, error) {
	var cfg Config
	d.Section(sectionConfig)
	nr := d.Count(readerEncSize)
	cfg.Readers = make([]model.Reader, nr)
	for i := range cfg.Readers {
		r := &cfg.Readers[i]
		r.ID = model.ReaderID(d.Int64())
		r.Location = model.LocationID(d.Int64())
		r.Period = model.Epoch(d.Int64())
		r.ReadRate = d.Float64()
		r.Confirming = d.Bool()
		r.ConfirmLevel = model.Level(d.Uint8())
	}
	nl := d.Count(locationEncSize)
	cfg.Locations = make([]model.Location, nl)
	for i := range cfg.Locations {
		l := &cfg.Locations[i]
		l.ID = model.LocationID(d.Int64())
		l.Name = d.String()
		l.Exit = d.Bool()
	}
	cfg.Graph.HistorySize = int(d.Int64())
	cfg.Inference.Alpha = d.Float64()
	cfg.Inference.Beta = d.Float64()
	cfg.Inference.AdaptiveBeta = d.Bool()
	cfg.Inference.Gamma = d.Float64()
	cfg.Inference.Theta = d.Float64()
	cfg.Inference.PruneThreshold = d.Float64()
	cfg.Inference.PartialHops = int(d.Int64())
	cfg.Compression = CompressionLevel(d.Uint8())
	cfg.WarmupLocation = model.LocationID(d.Int64())
	cfg.KeepRawResult = d.Bool()
	cfg.DedupStaleness = model.Epoch(d.Int64())
	return cfg, d.Err()
}

// Snapshot serializes the substrate's complete state to w in the
// versioned, checksummed checkpoint format. The substrate is unchanged;
// snapshots of equal state are byte-identical.
func (s *Substrate) Snapshot(w io.Writer) error {
	e := checkpoint.NewEncoder()
	encodeConfig(e, &s.cfg)

	e.Section(sectionSubstrate)
	e.Int64(int64(s.lastNow))
	e.Int64(s.stats.Epochs)
	e.Int64(s.stats.Readings)
	e.Int64(int64(s.stats.UpdateTime))
	e.Int64(int64(s.stats.InferenceTime))
	e.Int64(s.stats.Events)
	e.Int64(s.stats.EventBytes)
	e.Int64(s.stats.RawBytes)
	tombs := make([]model.Tag, 0, len(s.tombstones))
	for g := range s.tombstones {
		tombs = append(tombs, g)
	}
	sortTags(tombs)
	e.Uint64(uint64(len(tombs)))
	for _, g := range tombs {
		e.Uint64(uint64(g))
	}

	s.dedup.EncodeState(e)
	s.graph.EncodeState(e)
	switch c := s.comp.(type) {
	case *compress.Level1:
		c.EncodeState(e)
	case *compress.Level2:
		c.EncodeState(e)
	default:
		return fmt.Errorf("core: snapshot: unknown compressor type %T", s.comp)
	}
	return e.Flush(w)
}

// RestoreSubstrate reconstructs a substrate from a snapshot previously
// written by Snapshot. The restore is all-or-nothing: any verification or
// decode failure returns an error and no substrate, so corrupt snapshots
// can never be half-applied.
func RestoreSubstrate(r io.Reader) (*Substrate, error) {
	d, err := checkpoint.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	cfg, err := decodeConfig(d)
	if err != nil {
		return nil, err
	}
	s, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("%w: restored config rejected: %v", checkpoint.ErrCorrupt, err)
	}

	d.Section(sectionSubstrate)
	s.lastNow = model.Epoch(d.Int64())
	s.stats.Epochs = d.Int64()
	s.stats.Readings = d.Int64()
	s.stats.UpdateTime = time.Duration(d.Int64())
	s.stats.InferenceTime = time.Duration(d.Int64())
	s.stats.Events = d.Int64()
	s.stats.EventBytes = d.Int64()
	s.stats.RawBytes = d.Int64()
	nt := d.Count(8)
	for i := 0; i < nt; i++ {
		g := model.Tag(d.Uint64())
		if g == model.NoTag {
			return nil, fmt.Errorf("%w: tombstone %d has zero tag", checkpoint.ErrCorrupt, i)
		}
		s.tombstones[g] = struct{}{}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}

	if err := s.dedup.DecodeState(d); err != nil {
		return nil, err
	}
	g, err := graph.DecodeState(d)
	if err != nil {
		return nil, err
	}
	if g.Config().HistorySize != s.graph.Config().HistorySize {
		return nil, fmt.Errorf("%w: graph history size %d does not match configured %d",
			checkpoint.ErrCorrupt, g.Config().HistorySize, s.graph.Config().HistorySize)
	}
	s.graph = g
	switch s.cfg.Compression {
	case Level2:
		c, err := compress.DecodeLevel2(d, levelOf)
		if err != nil {
			return nil, err
		}
		s.comp = c
	default:
		c, err := compress.DecodeLevel1(d, levelOf)
		if err != nil {
			return nil, err
		}
		s.comp = c
	}
	if err := d.Finish(); err != nil {
		return nil, err
	}
	return s, nil
}

// LastEpoch returns the last successfully processed epoch, or
// model.EpochNone before the first. A restored substrate reports the
// epoch of its snapshot, which is what lets callers skip already-processed
// input.
func (s *Substrate) LastEpoch() model.Epoch { return s.lastNow }

// SnapshotToFile writes a snapshot to path atomically (tmp + fsync +
// rename), so a crash mid-checkpoint leaves the previous snapshot intact.
// On an instrumented substrate the snapshot size and write latency are
// recorded; the written bytes are identical either way.
func (s *Substrate) SnapshotToFile(path string) error {
	if s.tel == nil {
		return checkpoint.WriteFileAtomic(path, s.Snapshot)
	}
	start := time.Now()
	var written int64
	err := checkpoint.WriteFileAtomic(path, func(w io.Writer) error {
		cw := &checkpoint.CountingWriter{W: w}
		err := s.Snapshot(cw)
		written = cw.N
		return err
	})
	if err == nil {
		s.tel.Ckpt.ObserveWrite(written, time.Since(start))
	}
	return err
}

// RestoreSubstrateFromFile restores a substrate from a snapshot file.
func RestoreSubstrateFromFile(path string) (*Substrate, error) {
	var s *Substrate
	err := checkpoint.ReadFile(path, func(r io.Reader) error {
		var err error
		s, err = RestoreSubstrate(r)
		return err
	})
	return s, err
}
