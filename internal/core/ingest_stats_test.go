package core

import (
	"fmt"
	"testing"

	"spire/internal/model"
	"spire/internal/sim"
)

// Property tests for the ingest gate's IngestStats bookkeeping. The gate
// is driven directly (no substrate), so all three policies can face
// arbitrarily broken delivery sequences; the assertions reconcile the
// gate's counters against conservation laws and against the fault
// injector's ground-truth FaultStats.

// syntheticTrace builds a clean epoch-ordered trace with a couple of
// readers; the gate only looks at epochs and per-reader tag sets.
func syntheticTrace(epochs int) []*model.Observation {
	trace := make([]*model.Observation, 0, epochs)
	for e := 1; e <= epochs; e++ {
		trace = append(trace, &model.Observation{
			Time: model.Epoch(e),
			ByReader: map[model.ReaderID][]model.Tag{
				1: {model.Tag(e), model.Tag(e + 1)},
				2: {model.Tag(e + 1), model.Tag(1000 + e)},
			},
		})
	}
	return trace
}

// runGateOnly drives one gate over a delivery sequence and returns the
// epochs it emitted, in emission order.
func runGateOnly(g *ingestGate, delivery []*model.Observation) []model.Epoch {
	var emitted []model.Epoch
	for _, o := range delivery {
		for _, r := range g.Offer(o.Clone()) {
			emitted = append(emitted, r.Time)
		}
	}
	for _, r := range g.Drain() {
		emitted = append(emitted, r.Time)
	}
	return emitted
}

func distinctEpochs(delivery []*model.Observation) int {
	seen := make(map[model.Epoch]bool)
	for _, o := range delivery {
		seen[o.Time] = true
	}
	return len(seen)
}

// TestIngestStatsConservation pins the accounting identity for all three
// policies under mixed fault loads: every offered observation is counted
// exactly once as Accepted, Stale, or Merged, and Accepted equals the
// number of observations actually emitted.
func TestIngestStatsConservation(t *testing.T) {
	trace := syntheticTrace(200)
	cfgs := []sim.FaultConfig{
		{Seed: 1},
		{Seed: 2, DuplicateRate: 0.3},
		{Seed: 3, SwapRate: 0.3},
		{Seed: 4, DropEpochRate: 0.2},
		{Seed: 5, DuplicateRate: 0.25, SwapRate: 0.25, DropEpochRate: 0.1},
		{Seed: 6, DuplicateRate: 0.5, SwapRate: 0.5, DropEpochRate: 0.25},
	}
	for _, fcfg := range cfgs {
		delivery := sim.NewFaultInjector(fcfg).Apply(trace)
		for _, policy := range []IngestPolicy{IngestStrict, IngestReject, IngestRepair} {
			name := fmt.Sprintf("seed=%d/%s", fcfg.Seed, policy)
			gate := newIngestGate(IngestConfig{Policy: policy, ReorderWindow: 16}, 0)
			emitted := runGateOnly(gate, delivery)
			st := gate.stats

			if got := st.Accepted + st.Stale + st.Merged; got != int64(len(delivery)) {
				t.Errorf("%s: Accepted+Stale+Merged = %d, want %d offers (%+v)",
					name, got, len(delivery), st)
			}
			if st.Accepted != int64(len(emitted)) {
				t.Errorf("%s: Accepted = %d but %d observations emitted", name, st.Accepted, len(emitted))
			}
			switch policy {
			case IngestStrict:
				// Hands-off: everything passes, nothing is dropped or merged.
				if st.Stale != 0 || st.Merged != 0 || st.Reordered != 0 || st.Accepted != int64(len(delivery)) {
					t.Errorf("%s: strict gate must pass everything through: %+v", name, st)
				}
			case IngestReject:
				// Spec: an observation is accepted iff its epoch exceeds
				// every previously accepted epoch.
				var wantAccepted, wantStale int64
				last := model.Epoch(0)
				for _, o := range delivery {
					if o.Time > last {
						last = o.Time
						wantAccepted++
					} else {
						wantStale++
					}
				}
				if st.Accepted != wantAccepted || st.Stale != wantStale {
					t.Errorf("%s: got Accepted=%d Stale=%d, want %d/%d",
						name, st.Accepted, st.Stale, wantAccepted, wantStale)
				}
				if st.Merged != 0 || st.Reordered != 0 {
					t.Errorf("%s: reject gate never merges or reorders: %+v", name, st)
				}
			case IngestRepair:
				// Repaired output is strictly increasing in epoch with no
				// duplicates, and never exceeds the distinct epochs offered.
				for i := 1; i < len(emitted); i++ {
					if emitted[i] <= emitted[i-1] {
						t.Fatalf("%s: repaired output not strictly increasing at %d: %v",
							name, i, emitted[i-1:i+1])
					}
				}
				if st.Accepted > int64(distinctEpochs(delivery)) {
					t.Errorf("%s: accepted %d epochs but only %d distinct offered",
						name, st.Accepted, distinctEpochs(delivery))
				}
			}
			// Emitted epochs under reject/repair are strictly increasing;
			// the substrate's monotonic-epoch check can therefore never
			// fire behind either gate.
			if policy != IngestStrict {
				last := model.Epoch(0)
				for _, e := range emitted {
					if e <= last {
						t.Fatalf("%s: emission not monotone: %v", name, emitted)
					}
					last = e
				}
			}
		}
	}
}

// TestIngestStatsMatchInjectorTruth reconciles the repair gate's Merged
// and Reordered counters with the injector's ground truth. Seeds are
// fixed, so each assertion is deterministic; the reorder window (16) is
// deep enough that no single-pass adjacent-swap chain in these schedules
// displaces an observation beyond repair.
func TestIngestStatsMatchInjectorTruth(t *testing.T) {
	trace := syntheticTrace(300)
	gateCfg := IngestConfig{Policy: IngestRepair, ReorderWindow: 16}

	// Duplicates only: every duplicate arrives while its original is
	// still buffered, so Merged equals the injected duplicate count
	// exactly and nothing is stale or reordered.
	for seed := int64(1); seed <= 8; seed++ {
		inj := sim.NewFaultInjector(sim.FaultConfig{Seed: seed, DuplicateRate: 0.35})
		delivery := inj.Apply(trace)
		truth := inj.Stats()
		if truth.Duplicates == 0 {
			t.Fatalf("seed %d: injector produced no duplicates", seed)
		}
		gate := newIngestGate(gateCfg, 0)
		runGateOnly(gate, delivery)
		st := gate.stats
		if st.Merged != truth.Duplicates || st.Stale != 0 {
			t.Errorf("seed %d: Merged=%d Stale=%d, injector duplicated %d",
				seed, st.Merged, st.Stale, truth.Duplicates)
		}
		if st.Reordered != 0 {
			t.Errorf("seed %d: duplicates alone must not reorder: %+v", seed, st)
		}
		if st.Accepted != int64(len(trace)) {
			t.Errorf("seed %d: Accepted=%d, want every distinct epoch (%d)", seed, st.Accepted, len(trace))
		}
	}

	// Swaps only: every accepted epoch survives, nothing merges, and the
	// reorder counter is bounded by the number of swaps performed while
	// detecting at least one whenever the injector swapped at all.
	for seed := int64(1); seed <= 8; seed++ {
		inj := sim.NewFaultInjector(sim.FaultConfig{Seed: seed, SwapRate: 0.3})
		delivery := inj.Apply(trace)
		truth := inj.Stats()
		if truth.Swaps == 0 {
			t.Fatalf("seed %d: injector performed no swaps", seed)
		}
		gate := newIngestGate(gateCfg, 0)
		runGateOnly(gate, delivery)
		st := gate.stats
		if st.Merged != 0 || st.Stale != 0 {
			t.Errorf("seed %d: swaps alone must not merge or drop: %+v", seed, st)
		}
		if st.Reordered == 0 || st.Reordered > truth.Swaps {
			t.Errorf("seed %d: Reordered=%d outside (0, Swaps=%d]", seed, st.Reordered, truth.Swaps)
		}
		if st.Accepted != int64(len(trace)) {
			t.Errorf("seed %d: Accepted=%d, want %d", seed, st.Accepted, len(trace))
		}
	}

	// Mixed load: each injected duplicate is either merged (original
	// still buffered) or dropped stale (original already delivered), and
	// epoch drops surface as exactly that many missing accepted epochs.
	for seed := int64(1); seed <= 8; seed++ {
		inj := sim.NewFaultInjector(sim.FaultConfig{
			Seed: seed, DuplicateRate: 0.25, SwapRate: 0.25, DropEpochRate: 0.15,
		})
		delivery := inj.Apply(trace)
		truth := inj.Stats()
		gate := newIngestGate(gateCfg, 0)
		runGateOnly(gate, delivery)
		st := gate.stats
		if st.Merged+st.Stale != truth.Duplicates {
			t.Errorf("seed %d: Merged+Stale=%d, injector duplicated %d (%+v)",
				seed, st.Merged+st.Stale, truth.Duplicates, st)
		}
		if st.Accepted != int64(len(trace))-truth.DroppedEpochs {
			t.Errorf("seed %d: Accepted=%d, want %d-%d dropped",
				seed, st.Accepted, len(trace), truth.DroppedEpochs)
		}
		if st.Reordered > truth.Swaps {
			t.Errorf("seed %d: Reordered=%d exceeds injector swaps %d", seed, st.Reordered, truth.Swaps)
		}
	}
}
