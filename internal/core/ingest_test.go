package core

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"spire/internal/compress"
	"spire/internal/event"
	"spire/internal/metrics"
	"spire/internal/model"
	"spire/internal/sim"
)

// buildTraceWithTruth steps a fast trace and maintains the ground-truth
// level-1 event stream alongside, as the experiment harness does.
func buildTraceWithTruth(t *testing.T, duration model.Epoch) ([]*model.Observation, []event.Event, *sim.Simulator) {
	t.Helper()
	s := fastSim(t, func(c *sim.Config) { c.Duration = duration })
	truthComp := compress.NewLevel1(levelOf)
	var trace []*model.Observation
	var truth []event.Event
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, o)
		truth = append(truth, truthComp.Compress(s.TrueResult())...)
		for _, g := range s.Departed() {
			truth = append(truth, truthComp.Retire(g, s.Now())...)
		}
	}
	truth = append(truth, truthComp.Close(s.Now()+1)...)
	return trace, truth, s
}

// runGated feeds a delivery sequence through a configured runner and
// returns the full output stream (including the closing events).
func runGated(t *testing.T, sub *Substrate, cfg RunnerConfig, delivery []*model.Observation) ([]event.Event, IngestStats) {
	t.Helper()
	r := NewRunnerConfigured(sub, cfg)
	in := make(chan *model.Observation)
	out := make(chan *EpochOutput, 1)
	errc := make(chan error, 1)
	go func() { errc <- r.Run(context.Background(), in, out) }()
	var evs []event.Event
	done := make(chan struct{})
	go func() {
		defer close(done)
		for po := range out {
			evs = append(evs, po.Events...)
		}
	}()
	for _, o := range delivery {
		in <- o.Clone()
	}
	close(in)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	<-done
	return evs, r.IngestStats()
}

// TestRepairReproducesCleanRun is the repair policy's equivalence
// property: duplicated and swapped deliveries carry the same information
// as the clean trace, so after reordering and merging the output stream
// must be byte-identical to the unfaulted run.
func TestRepairReproducesCleanRun(t *testing.T) {
	trace, _, s := buildTraceWithTruth(t, 150)

	want, _ := runGated(t, newSubstrate(t, s, Level1), RunnerConfig{}, trace)

	inj := sim.NewFaultInjector(sim.FaultConfig{
		Seed:          7,
		DuplicateRate: 0.25,
		SwapRate:      0.25,
	})
	delivery := inj.Apply(trace)
	if len(delivery) <= len(trace) {
		t.Fatalf("injector produced no duplicates (%d of %d)", len(delivery), len(trace))
	}
	got, stats := runGated(t, newSubstrate(t, s, Level1),
		RunnerConfig{Ingest: IngestConfig{Policy: IngestRepair}}, delivery)
	if stats.Merged == 0 || stats.Reordered == 0 {
		t.Fatalf("faults not exercised: %+v", stats)
	}
	if stats.Accepted != int64(len(trace)) {
		t.Errorf("repair delivered %d epochs, want %d", stats.Accepted, len(trace))
	}
	if !bytes.Equal(encodeEvents(t, got), encodeEvents(t, want)) {
		t.Fatalf("repaired stream not byte-identical to clean run (%d vs %d events)", len(got), len(want))
	}
}

// TestIngestPoliciesSurviveFullFaults turns every fault on — dropout
// bursts, duplicates, swaps, lost epochs — and checks that both lenient
// policies run the trace to completion with a well-formed closed output
// stream, and that the reject policy's interpretation quality (event
// F-measure against ground truth) stays useful.
func TestIngestPoliciesSurviveFullFaults(t *testing.T) {
	trace, truth, s := buildTraceWithTruth(t, 300)
	inj := sim.NewFaultInjector(sim.FaultConfig{
		Seed:          42,
		DropoutEvery:  20,
		DropoutLen:    3,
		DuplicateRate: 0.15,
		SwapRate:      0.15,
		DropEpochRate: 0.05,
	})
	delivery := inj.Apply(trace)

	for _, policy := range []IngestPolicy{IngestReject, IngestRepair} {
		t.Run(policy.String(), func(t *testing.T) {
			evs, stats := runGated(t, newSubstrate(t, s, Level1),
				RunnerConfig{Ingest: IngestConfig{Policy: policy}}, delivery)
			if err := event.CheckWellFormed(evs, true); err != nil {
				t.Fatalf("output stream: %v", err)
			}
			if stats.Accepted == 0 {
				t.Fatalf("gate accepted nothing: %+v", stats)
			}
			outLoc, _ := event.SplitStreams(evs)
			truthLoc, _ := event.SplitStreams(truth)
			score := metrics.ScoreEvents(outLoc, truthLoc, 60)
			t.Logf("policy %s: %+v; location-event F=%.3f (P=%.3f R=%.3f)",
				policy, stats, score.F, score.Precision, score.Recall)
			if score.F < 0.5 {
				t.Errorf("F-measure %.3f under faults too low", score.F)
			}
		})
	}
}

// TestIngestStrictFailsOnDisorder pins the historical behavior: under the
// strict policy an out-of-order delivery reaches the substrate and fails
// the run instead of being papered over.
func TestIngestStrictFailsOnDisorder(t *testing.T) {
	trace, _, s := buildTraceWithTruth(t, 30)
	delivery := []*model.Observation{trace[0], trace[2], trace[1]}
	r := NewRunnerConfigured(newSubstrate(t, s, Level1), RunnerConfig{})
	in := make(chan *model.Observation, len(delivery))
	out := make(chan *EpochOutput, len(delivery)+1)
	for _, o := range delivery {
		in <- o.Clone()
	}
	close(in)
	err := r.Run(context.Background(), in, out)
	if err == nil {
		t.Fatal("strict policy must surface non-monotone input")
	}
	if want := fmt.Sprintf("epoch %d", trace[1].Time); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the offending epoch", err)
	}
}

// TestIngestGateRepairWindow checks the repair gate directly: late
// arrivals within the window are reordered into place, later ones are
// dropped as stale.
func TestIngestGateRepairWindow(t *testing.T) {
	g := newIngestGate(IngestConfig{Policy: IngestRepair, ReorderWindow: 4}, model.EpochNone)
	mk := func(e model.Epoch) *model.Observation { return model.NewObservation(e) }
	var delivered []model.Epoch
	offer := func(e model.Epoch) {
		for _, o := range g.Offer(mk(e)) {
			delivered = append(delivered, o.Time)
		}
	}
	// Epoch 2 arrives late but within the window.
	for _, e := range []model.Epoch{1, 3, 4, 2, 5, 6, 7, 8, 9} {
		offer(e)
	}
	for _, o := range g.Drain() {
		delivered = append(delivered, o.Time)
	}
	want := []model.Epoch{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if fmt.Sprint(delivered) != fmt.Sprint(want) {
		t.Fatalf("delivered %v, want %v", delivered, want)
	}
	if g.stats.Stale != 0 || g.stats.Accepted != int64(len(want)) {
		t.Errorf("stats %+v", g.stats)
	}

	// An arrival behind the already-delivered frontier is beyond repair.
	g2 := newIngestGate(IngestConfig{Policy: IngestRepair, ReorderWindow: 2}, model.EpochNone)
	var out2 []model.Epoch
	for _, e := range []model.Epoch{1, 2, 3, 4, 5, 6, 1} {
		for _, o := range g2.Offer(mk(e)) {
			out2 = append(out2, o.Time)
		}
	}
	if g2.stats.Stale != 1 {
		t.Errorf("late arrival beyond window: stats %+v", g2.stats)
	}
}
