package core

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spire/internal/model"
	"spire/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden digests under testdata/golden")

// The golden corpus pins the exact output of three deterministic
// end-to-end scenarios as SHA-256 digests of the binary event stream.
// Any change to dedup, inference, conflict resolution, compression, or
// the ingest gate that alters even one emitted event flips a digest and
// fails here — the broadest regression tripwire in the repo. Intentional
// output changes regenerate the digests with:
//
//	go test ./internal/core -run TestGolden -update
//
// and the diff of testdata/golden/ then documents that the output
// changed on purpose.
type goldenScenario struct {
	name   string
	level  CompressionLevel
	ingest IngestConfig
	// faults perturbs the clean trace into the delivered sequence; nil
	// delivers the trace as-is.
	faults *sim.FaultConfig
}

var goldenScenarios = []goldenScenario{
	{
		name:  "clean",
		level: Level2,
	},
	{
		// Duplicated and late deliveries plus whole lost epochs under the
		// reject policy: stale arrivals are dropped, gaps stay gaps.
		name:   "faulted-reject",
		level:  Level1,
		ingest: IngestConfig{Policy: IngestReject},
		faults: &sim.FaultConfig{
			Seed:          21,
			DropoutEvery:  50,
			DropoutLen:    4,
			DuplicateRate: 0.1,
			DropEpochRate: 0.05,
		},
	},
	{
		// Duplicates and adjacent swaps under the repair policy: the gate
		// reorders and merges them back into the clean sequence.
		name:   "faulted-repair",
		level:  Level2,
		ingest: IngestConfig{Policy: IngestRepair},
		faults: &sim.FaultConfig{
			Seed:          22,
			DuplicateRate: 0.12,
			SwapRate:      0.12,
		},
	},
}

func TestGoldenScenarios(t *testing.T) {
	trace, s := buildTrace(t, 200)
	for _, sc := range goldenScenarios {
		t.Run(sc.name, func(t *testing.T) {
			delivery := trace
			if sc.faults != nil {
				delivery = sim.NewFaultInjector(*sc.faults).Apply(trace)
			}
			evs, _ := runGated(t, newSubstrate(t, s, sc.level),
				RunnerConfig{Ingest: sc.ingest}, delivery)
			if len(evs) == 0 {
				t.Fatal("scenario produced no events")
			}
			sum := sha256.Sum256(encodeEvents(t, evs))
			got := hex.EncodeToString(sum[:])

			path := filepath.Join("testdata", "golden", sc.name+".sha256")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s = %s", path, got)
				return
			}
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden digest (regenerate with -update): %v", err)
			}
			want := strings.TrimSpace(string(raw))
			if got != want {
				t.Errorf("%s: event-stream digest changed\ngot:  %s\nwant: %s\n"+
					"If the output change is intentional, regenerate with -update.",
					sc.name, got, want)
			}
		})
	}
}

// TestGoldenTraceIsDeterministic guards the corpus's foundation: the
// simulator and fault injector must be bit-stable under a fixed seed, or
// the digests would flake rather than gate regressions.
func TestGoldenTraceIsDeterministic(t *testing.T) {
	traceA, _ := buildTrace(t, 200)
	traceB, _ := buildTrace(t, 200)
	if len(traceA) != len(traceB) {
		t.Fatalf("trace lengths differ: %d vs %d", len(traceA), len(traceB))
	}
	digest := func(trace []*model.Observation) string {
		h := sha256.New()
		for _, o := range trace {
			for _, rd := range o.Readings() {
				h.Write([]byte{byte(rd.Reader)})
				var buf [8]byte
				for i := 0; i < 8; i++ {
					buf[i] = byte(rd.Tag >> (8 * i))
				}
				h.Write(buf[:])
			}
		}
		return hex.EncodeToString(h.Sum(nil))
	}
	if digest(traceA) != digest(traceB) {
		t.Fatal("simulator trace not deterministic under fixed seed")
	}
	faultsA := sim.NewFaultInjector(*goldenScenarios[1].faults).Apply(traceA)
	faultsB := sim.NewFaultInjector(*goldenScenarios[1].faults).Apply(traceB)
	if len(faultsA) != len(faultsB) || digest(faultsA) != digest(faultsB) {
		t.Fatal("fault injector not deterministic under fixed seed")
	}
}
