package core

import (
	"bytes"
	"fmt"
	"testing"

	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/sim"
)

// The batched ingest path is a pure performance representation: for every
// ingest worker width, ProcessBatch must reproduce ProcessEpoch's event
// stream, query store, and snapshots bit for bit, at both compression
// levels. These tests pin the cross-path equivalence directly; the golden
// corpus (golden_test.go) additionally pins the Runner's batch routing
// against committed SHA-256 digests.

// runTraceBatch mirrors runTraceSnap but drives the batched path with a
// fixed ingest width, converting each observation through a reused batch
// the way the Runner does.
func runTraceBatch(t *testing.T, sub *Substrate, trace []*model.Observation, mid, workers int) (perEpoch [][]event.Event, closing []event.Event, midSnap, endSnap []byte) {
	t.Helper()
	sub.SetIngestWorkers(workers)
	var b model.Batch
	perEpoch = make([][]event.Event, len(trace))
	for i, o := range trace {
		out, err := sub.ProcessBatch(b.FromObservation(o.Clone()))
		if err != nil {
			t.Fatal(err)
		}
		perEpoch[i] = append([]event.Event(nil), out.Events...)
		if i == mid {
			zeroWallClock(sub) // snapshots embed wall-clock stage timings
			var buf bytes.Buffer
			if err := sub.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			midSnap = buf.Bytes()
		}
	}
	closing = sub.Close(trace[len(trace)-1].Time + 1)
	zeroWallClock(sub)
	var buf bytes.Buffer
	if err := sub.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return perEpoch, closing, midSnap, buf.Bytes()
}

// TestIngestWorkersByteIdentity is the end-to-end determinism pin of the
// batched ingest path: for ingest widths {0 (GOMAXPROCS), 1, 2, 4, 8} the
// ProcessBatch run reproduces the ProcessEpoch reference bit for bit —
// events, query store, mid-run and final snapshots — at both compression
// levels, and a mid-run restore retuned like the CLI's -ingest-workers
// flag replays the tail identically.
func TestIngestWorkersByteIdentity(t *testing.T) {
	trace, s := buildTrace(t, 120)
	mid := len(trace) / 2
	for _, level := range []CompressionLevel{Level1, Level2} {
		t.Run(fmt.Sprintf("level%d", level), func(t *testing.T) {
			ref := newSubstrate(t, s, level)
			refEpochs, refClosing, refMid, refEnd := runTraceSnap(t, ref, trace, mid)
			refFull := flatten(refEpochs, refClosing)
			refBytes := encodeEvents(t, refFull)
			refStore := feedStore(t, refFull)
			if len(refBytes) == 0 {
				t.Fatal("reference run produced no events")
			}

			for _, workers := range []int{0, 1, 2, 4, 8} {
				name := fmt.Sprintf("ingest-workers=%d", workers)
				sub := newSubstrate(t, s, level)
				perEpoch, closing, midSnap, endSnap := runTraceBatch(t, sub, trace, mid, workers)
				full := flatten(perEpoch, closing)
				if !bytes.Equal(encodeEvents(t, full), refBytes) {
					t.Fatalf("%s: event stream differs from ProcessEpoch reference (%d vs %d events)",
						name, len(full), len(refFull))
				}
				if !bytes.Equal(midSnap, refMid) {
					t.Fatalf("%s: mid-run snapshot differs from reference", name)
				}
				if !bytes.Equal(endSnap, refEnd) {
					t.Fatalf("%s: final snapshot differs from reference", name)
				}
				compareStores(t, feedStore(t, full), refStore, name)
			}

			// Restore from the mid-run snapshot, retune the pools the way
			// the CLI's -ingest-workers flag does after a restore, and
			// replay the tail through the batched path: the combined stream
			// must still match the uninterrupted reference run.
			rsub, err := RestoreSubstrate(bytes.NewReader(refMid))
			if err != nil {
				t.Fatal(err)
			}
			rsub.SetIngestWorkers(8)
			var b model.Batch
			streamEvs := flatten(refEpochs[:mid+1], nil)
			for _, o := range trace[mid+1:] {
				out, err := rsub.ProcessBatch(b.FromObservation(o.Clone()))
				if err != nil {
					t.Fatal(err)
				}
				streamEvs = append(streamEvs, out.Events...)
			}
			streamEvs = append(streamEvs, rsub.Close(trace[len(trace)-1].Time+1)...)
			if !bytes.Equal(encodeEvents(t, streamEvs), refBytes) {
				t.Fatal("restore + SetIngestWorkers(8) replay not byte-identical")
			}
		})
	}
}

// TestProcessBatchErrorParity pins the error contract against
// ProcessEpoch: same nil-input, non-monotonic-epoch, and unknown-reader
// errors, with known readers' groups already applied when the
// unknown-reader error surfaces (exactly the reference semantics).
func TestProcessBatchErrorParity(t *testing.T) {
	s := fastSim(t, nil)
	sub := newSubstrate(t, s, Level1)

	if _, err := sub.ProcessBatch(nil); err == nil {
		t.Fatal("nil batch must error")
	}

	known := s.Readers()[0]
	item := epc.MustEncode(epc.Identity{Level: model.LevelItem, Company: 9, Serial: 1})
	b := model.NewBatch(1)
	b.BeginReader(known.ID)
	b.Append(item)
	b.BeginReader(known.ID + 1000) // not deployed
	b.Append(item)
	_, err := sub.ProcessBatch(b)
	want := fmt.Sprintf("core: reading from unknown reader %d", known.ID+1000)
	if err == nil || err.Error() != want {
		t.Fatalf("unknown reader: got %v, want %q", err, want)
	}
	if n := sub.Graph().Node(item); n == nil {
		t.Fatal("known reader's group must be applied before the unknown-reader error")
	}

	// The failed epoch still consumed its timestamp, as with ProcessEpoch.
	b2 := model.NewBatch(1)
	if _, err := sub.ProcessBatch(b2); err == nil {
		t.Fatal("non-monotonic epoch must error")
	}

	bad := model.NewBatch(2)
	bad.BeginReader(5)
	bad.Groups[0].End = 7 // offsets no longer cover the tag column
	if _, err := sub.ProcessBatch(bad); err == nil {
		t.Fatal("invalid batch must error")
	}
}

// runGatedEpochPath is the cross-path reference for the fuzz target: the
// same ingest gate the Runner uses, but feeding ProcessEpoch.
func runGatedEpochPath(t *testing.T, sub *Substrate, cfg RunnerConfig, delivery []*model.Observation) []event.Event {
	t.Helper()
	gate := newIngestGate(cfg.Ingest, sub.LastEpoch())
	var evs []event.Event
	process := func(obs []*model.Observation) {
		for _, o := range obs {
			out, err := sub.ProcessEpoch(o)
			if err != nil {
				t.Fatal(err)
			}
			evs = append(evs, out.Events...)
		}
	}
	for _, o := range delivery {
		process(gate.Offer(o.Clone()))
	}
	process(gate.Drain())
	return append(evs, sub.Close(sub.LastEpoch()+1)...)
}

// FuzzIngestBatchEquivalence drives fault-injected delivery sequences
// (duplicates, swaps, lost epochs, dropout bursts) through the repairing
// ingest gate into the batched Runner path at several ingest widths and
// demands output streams and snapshots identical to the ProcessEpoch
// reference. The faults come from the fuzzed parameters, so the fuzzer
// explores the space of broken reader feeds.
func FuzzIngestBatchEquivalence(f *testing.F) {
	cfg := sim.DefaultConfig()
	cfg.Duration = 80
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	var trace []*model.Observation
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			f.Fatal(err)
		}
		trace = append(trace, o)
	}

	f.Add(int64(1), byte(0), byte(0), byte(0), byte(0), byte(0))
	f.Add(int64(2), byte(30), byte(30), byte(10), byte(10), byte(3))
	f.Add(int64(3), byte(60), byte(0), byte(25), byte(7), byte(2))
	f.Add(int64(4), byte(0), byte(60), byte(0), byte(15), byte(5))
	f.Fuzz(func(t *testing.T, seed int64, dup, swap, drop, burstEvery, burstLen byte) {
		fcfg := sim.FaultConfig{
			Seed:          seed,
			DuplicateRate: float64(dup%64) / 100,
			SwapRate:      float64(swap%64) / 100,
			DropEpochRate: float64(drop%32) / 100,
			DropoutEvery:  model.Epoch(burstEvery % 20),
			DropoutLen:    model.Epoch(burstLen % 5),
		}
		delivery := sim.NewFaultInjector(fcfg).Apply(trace)
		rcfg := RunnerConfig{Ingest: IngestConfig{Policy: IngestRepair}}

		refSub := newSubstrate(t, s, Level2)
		refEvents := encodeEvents(t, runGatedEpochPath(t, refSub, rcfg, delivery))
		zeroWallClock(refSub) // snapshots embed wall-clock stage timings
		var refSnap bytes.Buffer
		if err := refSub.Snapshot(&refSnap); err != nil {
			t.Fatal(err)
		}

		for _, workers := range []int{1, 4, 0} {
			sub := newSubstrate(t, s, Level2)
			sub.SetIngestWorkers(workers)
			evs, _ := runGated(t, sub, rcfg, delivery)
			if got := encodeEvents(t, evs); !bytes.Equal(got, refEvents) {
				t.Fatalf("ingest-workers=%d: faulted stream output differs from ProcessEpoch reference", workers)
			}
			zeroWallClock(sub)
			var snap bytes.Buffer
			if err := sub.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), refSnap.Bytes()) {
				t.Fatalf("ingest-workers=%d: snapshot after faulted stream differs", workers)
			}
		}
	})
}
