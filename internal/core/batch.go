package core

import (
	"fmt"
	"runtime"
	"time"

	"spire/internal/model"
	"spire/internal/stream"
	"spire/internal/trace"
)

// SetIngestWorkers bounds the batched-ingest worker pools — the sharded
// deduplication pass and the reader-group-parallel graph update used by
// ProcessBatch (0 = GOMAXPROCS, 1 = serial). Outputs are byte-identical
// for every width; like SetInferWorkers this is runtime tuning only and
// is never persisted, so it must be reapplied after a checkpoint restore.
func (s *Substrate) SetIngestWorkers(n int) {
	if n < 0 {
		n = 0
	}
	s.ingest = n
	s.dedup.SetWorkers(n)
}

// IngestWorkers returns the configured ingest worker bound (0 = GOMAXPROCS).
func (s *Substrate) IngestWorkers() int { return s.ingest }

// ingestWidth resolves the configured bound against the machine.
func (s *Substrate) ingestWidth() int {
	if s.ingest > 0 {
		return s.ingest
	}
	return runtime.GOMAXPROCS(0)
}

// ProcessBatch runs the full substrate over one epoch's columnar batch:
// the batched counterpart of ProcessEpoch, and the path the Runner takes.
// Dedup shards the tag column across the ingest worker pool and the graph
// update applies independent reader groups concurrently, but the output —
// events, results, snapshots, stats — is byte-identical to ProcessEpoch
// on the equivalent Observation for every worker width; the equivalence
// suite and the golden corpus pin the two paths together.
//
// The batch is consumed: deduplication and tombstone filtering compact
// its columns in place. Result/RawResult buffer reuse follows the
// ProcessEpoch contract.
func (s *Substrate) ProcessBatch(b *model.Batch) (*EpochOutput, error) {
	if b == nil {
		return nil, fmt.Errorf("core: nil batch")
	}
	if s.rec != nil {
		// The provenance recorder is not goroutine-safe and expects the
		// serial sweep's record order, so traced runs take the reference
		// path. Tracing is a diagnostic mode; the transparency tests pin
		// that its outputs match the untraced run byte for byte.
		return s.ProcessEpoch(b.Observation())
	}
	if b.Time <= s.lastNow {
		return nil, fmt.Errorf("core: epoch %d not after previous epoch %d", b.Time, s.lastNow)
	}
	if err := b.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.lastNow = b.Time
	now := b.Time
	rawReadings := int64(b.Total())
	s.stats.Epochs++
	s.stats.Readings += rawReadings
	s.stats.RawBytes += rawReadings * stream.ReadingSize

	tel := s.tel
	timed := tel != nil
	var mark time.Time
	if timed {
		mark = time.Now()
	}
	var span trace.Span
	if tel != nil {
		tel.IngestReadings.Add(rawReadings)
		tel.IngestBatchBytes.Add(b.SizeBytes())
	}

	s.dedup.CleanBatch(b)
	s.filterTombstonesBatch(b)

	if timed {
		next := time.Now()
		tel.StageDedup.Observe(next.Sub(mark).Seconds())
		mark = next
	}

	start := time.Now()
	readers := s.groupReaders[:0]
	for i := range b.Groups {
		readers = append(readers, s.readers[b.Groups[i].Reader])
	}
	s.groupReaders = readers
	if err := s.graph.UpdateBatch(b, readers, s.ingestWidth()); err != nil {
		return nil, err
	}
	for i, r := range readers {
		if r == nil {
			return nil, fmt.Errorf("core: reading from unknown reader %d", b.Groups[i].Reader)
		}
	}
	s.stats.UpdateTime += time.Since(start)
	if timed {
		next := time.Now()
		tel.StageUpdate.Observe(next.Sub(mark).Seconds())
		mark = next
	}

	return s.finishEpoch(now, rawReadings, tel, nil, timed, mark, &span), nil
}

// filterTombstonesBatch mirrors ProcessEpoch's tombstone pass over the
// batch columns, compacting the tag column in place: an exit reader's
// reading of a departed tag is a residual and is dropped; any other
// reader's reading resurrects the tag (see Substrate.tombstones).
func (s *Substrate) filterTombstonesBatch(b *model.Batch) {
	if len(s.tombstones) == 0 {
		return
	}
	w := int32(0)
	for i := range b.Groups {
		gr := &b.Groups[i]
		reader, known := s.readers[gr.Reader]
		atExit := known && s.exits[reader.Location]
		start := w
		for p := gr.Start; p < gr.End; p++ {
			g := b.Tags[p]
			if _, dead := s.tombstones[g]; dead {
				if atExit {
					continue // residual reading of a departed object
				}
				delete(s.tombstones, g) // wrongly retired: resurrect
			}
			b.Tags[w] = g
			w++
		}
		gr.Start, gr.End = start, w
	}
	b.Tags = b.Tags[:w]
}
