package core

import (
	"slices"

	"spire/internal/model"
)

// Ingest hardening. The substrate requires strictly increasing epochs —
// real reader feeds deliver worse: duplicated observations, bursts
// arriving out of order, and epoch gaps after dropouts. The ingest gate
// sits between the input channel and ProcessEpoch and applies one of
// three policies instead of letting malformed input corrupt graph state.

// IngestPolicy selects how the runner treats malformed input ordering.
type IngestPolicy int

const (
	// IngestStrict passes observations through untouched; a non-monotone
	// epoch surfaces as a processing error, failing the run. This is the
	// historical behavior and the zero value.
	IngestStrict IngestPolicy = iota

	// IngestReject drops observations whose epoch is not after the last
	// processed epoch (duplicates and late arrivals) and processes
	// everything else immediately. Gaps pass through — a missing epoch is
	// legal input to the substrate.
	IngestReject

	// IngestRepair buffers observations in a reorder window, delivers them
	// in epoch order, and merges duplicate observations of the same epoch
	// (union of readings per reader). Only observations arriving later
	// than the window allows are dropped.
	IngestRepair
)

// String names the policy.
func (p IngestPolicy) String() string {
	switch p {
	case IngestReject:
		return "reject"
	case IngestRepair:
		return "repair"
	default:
		return "strict"
	}
}

// ParseIngestPolicy maps a flag value to a policy.
func ParseIngestPolicy(s string) (IngestPolicy, bool) {
	switch s {
	case "strict", "":
		return IngestStrict, true
	case "reject":
		return IngestReject, true
	case "repair":
		return IngestRepair, true
	}
	return IngestStrict, false
}

// DefaultReorderWindow is the repair policy's default reorder depth, in
// epochs.
const DefaultReorderWindow = 8

// IngestConfig parameterizes the gate.
type IngestConfig struct {
	Policy IngestPolicy
	// ReorderWindow is how many epochs behind the newest seen epoch an
	// observation may arrive and still be repaired into order (repair
	// policy only). Zero selects DefaultReorderWindow.
	ReorderWindow int
}

// IngestStats counts the gate's decisions.
type IngestStats struct {
	Accepted  int64 // observations delivered to the substrate
	Stale     int64 // dropped: epoch at or before the last delivered epoch
	Merged    int64 // duplicate-epoch observations merged into a buffered one
	Reordered int64 // buffered observations delivered out of arrival order
}

// ingestGate applies an IngestConfig to an observation stream. Offer
// returns the observations now ready for processing, in epoch order;
// Drain flushes the reorder buffer at end of input.
type ingestGate struct {
	cfg   IngestConfig
	last  model.Epoch // last epoch handed out (or processed before restore)
	seen  model.Epoch // newest epoch ever offered (repair)
	buf   map[model.Epoch]*model.Observation
	arr   map[model.Epoch]int // arrival sequence of buffered epochs
	seq   int
	stats IngestStats

	// Reused per-call scratch: the flush work lists and the merge dedup
	// set. Offer/Drain return out, so the returned slice is only valid
	// until the next call (documented on Offer).
	ready   []model.Epoch
	out     []*model.Observation
	dupTags map[model.Tag]bool
}

func newIngestGate(cfg IngestConfig, last model.Epoch) *ingestGate {
	if cfg.ReorderWindow <= 0 {
		cfg.ReorderWindow = DefaultReorderWindow
	}
	return &ingestGate{
		cfg:  cfg,
		last: last,
		seen: model.EpochNone,
		buf:  make(map[model.Epoch]*model.Observation),
		arr:  make(map[model.Epoch]int),
	}
}

// Offer accepts one observation and returns those ready for processing.
// The returned slice is valid until the next call.
func (g *ingestGate) Offer(o *model.Observation) []*model.Observation {
	switch g.cfg.Policy {
	case IngestReject:
		if o.Time <= g.last {
			g.stats.Stale++
			return nil
		}
		g.last = o.Time
		g.stats.Accepted++
		g.out = append(g.out[:0], o)
		return g.out
	case IngestRepair:
		return g.offerRepair(o)
	default: // IngestStrict: hands-off
		g.last = o.Time
		g.stats.Accepted++
		g.out = append(g.out[:0], o)
		return g.out
	}
}

func (g *ingestGate) offerRepair(o *model.Observation) []*model.Observation {
	g.seq++
	if o.Time <= g.last {
		// Arrived after its epoch was already delivered (or processed
		// before a restore): beyond repair.
		g.stats.Stale++
		return nil
	}
	if have, dup := g.buf[o.Time]; dup {
		g.mergeObservation(have, o)
		g.stats.Merged++
	} else {
		g.buf[o.Time] = o
		g.arr[o.Time] = g.seq
	}
	if o.Time > g.seen {
		g.seen = o.Time
	}
	// Deliver every buffered epoch old enough that nothing earlier can
	// still arrive within the window.
	return g.flushThrough(g.seen - model.Epoch(g.cfg.ReorderWindow))
}

// flushThrough delivers buffered epochs <= limit in epoch order.
func (g *ingestGate) flushThrough(limit model.Epoch) []*model.Observation {
	if len(g.buf) == 0 {
		return nil
	}
	ready := g.ready[:0]
	for t := range g.buf {
		if t <= limit {
			ready = append(ready, t)
		}
	}
	g.ready = ready
	if len(ready) == 0 {
		return nil
	}
	slices.Sort(ready)
	out := g.out[:0]
	lastSeq := 0
	for _, t := range ready {
		o := g.buf[t]
		if g.arr[t] < lastSeq {
			g.stats.Reordered++
		}
		lastSeq = g.arr[t]
		delete(g.buf, t)
		delete(g.arr, t)
		out = append(out, o)
		g.last = t
		g.stats.Accepted++
	}
	g.out = out
	return out
}

// Drain flushes everything still buffered, in epoch order. Call at end of
// input.
func (g *ingestGate) Drain() []*model.Observation {
	return g.flushThrough(model.InfiniteEpoch)
}

// mergeObservation unions src's readings into dst (same epoch), dropping
// per-reader duplicate tags so a doubled delivery merges to the original.
// The dedup set is gate scratch cleared per reader, so steady-state
// merging allocates nothing.
func (g *ingestGate) mergeObservation(dst, src *model.Observation) {
	if g.dupTags == nil {
		g.dupTags = make(map[model.Tag]bool)
	}
	for r, tags := range src.ByReader {
		have := dst.ByReader[r]
		clear(g.dupTags)
		for _, t := range have {
			g.dupTags[t] = true
		}
		for _, t := range tags {
			if !g.dupTags[t] {
				have = append(have, t)
				g.dupTags[t] = true
			}
		}
		dst.ByReader[r] = have
	}
}
