// Package core wires SPIRE's modules into the interpretation and
// compression substrate of Fig. 2: device-level deduplication feeds the
// stream-driven graph update (data capture), a probabilistic inference
// pass estimates per-object locations and containment, conflict resolution
// reconciles the two, and an online compressor turns the interpreted state
// into the compressed output event stream.
package core

import (
	"cmp"
	"fmt"
	"maps"
	"slices"
	"time"

	"spire/internal/compress"
	"spire/internal/dedup"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/graph"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/stream"
	"spire/internal/trace"
)

// CompressionLevel selects the output compressor.
type CompressionLevel int

// Compression levels of Section V.
const (
	Level1 CompressionLevel = 1 // range compression
	Level2 CompressionLevel = 2 // containment-based location compression
)

// Config assembles a substrate.
type Config struct {
	// Readers is the full reader deployment; it drives reader lookup
	// during updates and the partial/complete inference schedule.
	Readers []model.Reader
	// Locations is the warehouse location table; locations marked Exit
	// retire observed objects after inference.
	Locations []model.Location

	Graph     graph.Config
	Inference inference.Config

	// Compression selects level-1 or level-2 output (default level 1).
	Compression CompressionLevel

	// WarmupLocation, when valid, marks a location (the entry door in the
	// paper's setup) whose readings only warm up the graph; objects there
	// still get verdicts, but callers typically exclude them from
	// accuracy scoring. Kept here so tools can discover it.
	WarmupLocation model.LocationID

	// KeepRawResult additionally exposes the inference result *before*
	// conflict resolution in EpochOutput.RawResult. The paper's accuracy
	// experiments (Expts 1-4) score raw inference; only the output-stream
	// experiment includes conflict resolution.
	KeepRawResult bool

	// DedupStaleness is the recency window of the deduplication tie-break
	// (see dedup.NewWithStaleness): zero selects dedup.DefaultStaleness,
	// negative disables expiry.
	DedupStaleness model.Epoch
}

// Stats accumulates the per-epoch costs reported in Table III.
type Stats struct {
	Epochs        int64
	Readings      int64
	UpdateTime    time.Duration
	InferenceTime time.Duration
	Events        int64
	EventBytes    int64
	RawBytes      int64
}

// EpochOutput is the result of processing one epoch.
type EpochOutput struct {
	// Result is the (conflict-resolved) inference result.
	Result *inference.Result
	// RawResult is the result before conflict resolution; only populated
	// when Config.KeepRawResult is set.
	RawResult *inference.Result
	// Mode says whether complete or partial inference ran.
	Mode inference.Mode
	// Events is the compressed output for the epoch, including the
	// closing events of objects that exited through a proper channel.
	Events []event.Event
	// Retired lists objects removed from the graph this epoch (exit-door
	// departures, containers first).
	Retired []model.Tag
}

// Substrate is the SPIRE interpretation and compression substrate. It is
// not safe for concurrent use.
type Substrate struct {
	cfg      Config
	readers  map[model.ReaderID]*model.Reader
	order    []model.ReaderID
	exits    map[model.LocationID]bool
	dedup    *dedup.Deduplicator
	graph    *graph.Graph
	inf      *inference.Inferencer
	schedule inference.Schedule
	comp     compressor
	stats    Stats
	lastNow  model.Epoch

	// ingest bounds the batched-ingest worker pools (sharded dedup and
	// reader-group-parallel graph update); 0 = GOMAXPROCS. Like the
	// inference width it is runtime tuning, never persisted.
	ingest int

	// groupReaders is the reused per-epoch scratch aligning a batch's
	// reader groups with resolved *model.Reader entries (nil = unknown).
	groupReaders []*model.Reader

	// tel holds the optional runtime-telemetry instruments (nil when
	// disabled); see telemetry.go. Recording is observation-only and never
	// influences processing.
	tel *Instruments

	// rec holds the optional decision-provenance recorder (nil when
	// disabled); see trace.go. Like tel, it is observation-only.
	rec *trace.Recorder

	// watch is the optional downstream event watcher (nil when disabled);
	// it receives each epoch's compressed output with epoch framing, after
	// the epoch is fully assembled. Like tel and rec it is observation-only:
	// nil keeps the pipeline byte-identical and allocation-free.
	watch *query.Watcher

	// raw is the pooled KeepRawResult copy, reset and refilled each epoch
	// instead of allocating fresh maps; it shares the Result lifetime
	// contract of ProcessEpoch.
	raw inference.Result

	// tombstones are tags already retired through an exit. A retired
	// object is often still within the exit reader's range for a few more
	// epochs, so readings of tombstoned tags by exit readers are ignored —
	// that keeps departed objects from flapping back into the graph as
	// ghosts. A reading by any *other* reader, though, is evidence the
	// retirement was wrong (e.g. a case whose stale containment made it
	// look like it left inside a departing pallet, when it was really
	// missed on the receiving belt): the tag is resurrected and processed
	// normally.
	tombstones map[model.Tag]struct{}
}

// compressor is the shared surface of the two compression levels.
type compressor interface {
	Compress(*inference.Result) []event.Event
	Retire(model.Tag, model.Epoch) []event.Event
	Close(model.Epoch) []event.Event
	Opens() (locations, containments int)
	SetTracer(*trace.Recorder)
}

// New builds a substrate.
func New(cfg Config) (*Substrate, error) {
	if len(cfg.Readers) == 0 {
		return nil, fmt.Errorf("core: no readers configured")
	}
	if len(cfg.Locations) == 0 {
		return nil, fmt.Errorf("core: no locations configured")
	}
	if cfg.Compression == 0 {
		cfg.Compression = Level1
	}
	if cfg.Compression != Level1 && cfg.Compression != Level2 {
		return nil, fmt.Errorf("core: unknown compression level %d", cfg.Compression)
	}
	g, err := graph.New(cfg.Graph)
	if err != nil {
		return nil, err
	}
	inf, err := inference.New(cfg.Inference, g.Config().HistorySize)
	if err != nil {
		return nil, err
	}
	s := &Substrate{
		cfg:        cfg,
		readers:    make(map[model.ReaderID]*model.Reader, len(cfg.Readers)),
		exits:      make(map[model.LocationID]bool),
		dedup:      dedup.NewWithStaleness(cfg.DedupStaleness),
		graph:      g,
		inf:        inf,
		schedule:   inference.NewSchedule(cfg.Readers),
		lastNow:    model.EpochNone,
		tombstones: make(map[model.Tag]struct{}),
	}
	for i := range cfg.Readers {
		r := &cfg.Readers[i]
		if _, dup := s.readers[r.ID]; dup {
			return nil, fmt.Errorf("core: duplicate reader ID %d", r.ID)
		}
		s.readers[r.ID] = r
		s.order = append(s.order, r.ID)
	}
	slices.Sort(s.order)
	for _, l := range cfg.Locations {
		if l.Exit {
			s.exits[l.ID] = true
		}
	}
	if cfg.Compression == Level2 {
		s.comp = compress.NewLevel2(levelOf)
	} else {
		s.comp = compress.NewLevel1(levelOf)
	}
	return s, nil
}

func levelOf(g model.Tag) model.Level {
	l, _ := epc.LevelOf(g)
	return l
}

// Graph exposes the time-varying graph (read-mostly; used by the memory
// experiment and by diagnostics).
func (s *Substrate) Graph() *graph.Graph { return s.graph }

// Schedule exposes the partial/complete inference schedule.
func (s *Substrate) Schedule() inference.Schedule { return s.schedule }

// SetInferWorkers overrides the inference worker-pool width at runtime
// (0 = GOMAXPROCS, 1 = serial). Worker width is never persisted, so this
// is how CLI tuning is applied after a checkpoint restore; outputs are
// byte-identical for every width.
func (s *Substrate) SetInferWorkers(n int) { s.inf.SetWorkers(n) }

// InferStats returns the component/node accounting of the most recent
// inference pass.
func (s *Substrate) InferStats() inference.PassStats { return s.inf.LastStats() }

// Stats returns accumulated processing statistics.
func (s *Substrate) Stats() Stats { return s.stats }

// Watch attaches a downstream event watcher. Each processed epoch is
// delivered as BeginEpoch(now) / Dispatch(events) / EndEpoch(now) after
// the epoch's output is fully assembled (including exit retirements), and
// Close's final events are framed the same way. Watching is observation-
// only: a nil watcher (the default) leaves the pipeline byte-identical
// and allocation-free, mirroring the telemetry and trace contracts.
func (s *Substrate) Watch(w *query.Watcher) { s.watch = w }

// ProcessEpoch runs the full substrate over one epoch's observation:
// dedup → graph update (per reader) → inference → conflict resolution →
// compression → exit retirement.
//
// The Result and RawResult in the returned output reuse buffers owned by
// the substrate: they stay valid until the next ProcessEpoch call. Callers
// that retain an epoch's results longer — or ship them to another
// goroutine, as Runner does — must Clone them first.
func (s *Substrate) ProcessEpoch(o *model.Observation) (*EpochOutput, error) {
	if o == nil {
		return nil, fmt.Errorf("core: nil observation")
	}
	if o.Time <= s.lastNow {
		return nil, fmt.Errorf("core: epoch %d not after previous epoch %d", o.Time, s.lastNow)
	}
	s.lastNow = o.Time
	now := o.Time
	rawReadings := int64(o.Total())
	s.stats.Epochs++
	s.stats.Readings += rawReadings
	s.stats.RawBytes += rawReadings * stream.ReadingSize

	// Telemetry and trace marks. Clock reads run only when at least one
	// observer is attached (timed), and every recording call is
	// observation-only — the transparency tests pin that enabling
	// telemetry or tracing changes no output byte.
	tel, rec := s.tel, s.rec
	timed := tel != nil || rec != nil
	var mark time.Time
	if timed {
		mark = time.Now()
	}
	var span trace.Span
	if rec != nil {
		rec.BeginEpoch(now)
		span.Epoch = now
		span.Readings = rawReadings
	}

	s.dedup.Clean(o)
	if len(s.tombstones) > 0 {
		for r, tags := range o.ByReader {
			reader, known := s.readers[r]
			atExit := known && s.exits[reader.Location]
			kept := tags[:0]
			for _, g := range tags {
				if _, dead := s.tombstones[g]; dead {
					if atExit {
						continue // residual reading of a departed object
					}
					delete(s.tombstones, g) // wrongly retired: resurrect
					if rec != nil {
						rec.Record(trace.Record{
							Epoch: now, Tag: g, Mech: trace.MechResurrected,
							Loc: model.LocationNone, Reader: r,
						})
					}
				}
				kept = append(kept, g)
			}
			o.ByReader[r] = kept
		}
	}

	if timed {
		next := time.Now()
		d := next.Sub(mark)
		if tel != nil {
			tel.StageDedup.Observe(d.Seconds())
		}
		span.DedupNS = d.Nanoseconds()
		mark = next
	}

	start := time.Now()
	for _, id := range s.order {
		tags, ok := o.ByReader[id]
		if !ok {
			continue
		}
		if err := s.graph.Update(s.readers[id], tags, now); err != nil {
			return nil, err
		}
	}
	for id := range o.ByReader {
		if _, ok := s.readers[id]; !ok {
			return nil, fmt.Errorf("core: reading from unknown reader %d", id)
		}
	}
	s.stats.UpdateTime += time.Since(start)
	if timed {
		next := time.Now()
		d := next.Sub(mark)
		if tel != nil {
			tel.StageUpdate.Observe(d.Seconds())
		}
		span.UpdateNS = d.Nanoseconds()
		mark = next
	}

	return s.finishEpoch(now, rawReadings, tel, rec, timed, mark, &span), nil
}

// finishEpoch runs the pipeline tail shared by ProcessEpoch and
// ProcessBatch — inference, conflict resolution, compression, and exit
// retirement — once the epoch's readings have been applied to the graph.
// The two front halves are pinned byte-identical by the ingest
// equivalence suite, so the tail sees indistinguishable graph state
// whichever path ran.
func (s *Substrate) finishEpoch(now model.Epoch, rawReadings int64, tel *Instruments, rec *trace.Recorder, timed bool, mark time.Time, span *trace.Span) *EpochOutput {
	start := time.Now()
	mode := s.schedule.ModeAt(now)
	res := s.inf.Infer(s.graph, now, mode)
	var raw *inference.Result
	if s.cfg.KeepRawResult {
		raw = &s.raw
		raw.Now = res.Now
		raw.Partial = res.Partial
		raw.Observed = res.Observed
		if raw.Locations == nil {
			raw.Locations = make(map[model.Tag]model.LocationID, len(res.Locations))
			raw.Parents = make(map[model.Tag]model.Tag, len(res.Parents))
		} else {
			clear(raw.Locations)
			clear(raw.Parents)
		}
		maps.Copy(raw.Locations, res.Locations)
		maps.Copy(raw.Parents, res.Parents)
	}
	if timed {
		next := time.Now()
		d := next.Sub(mark)
		if tel != nil {
			tel.StageInfer.Observe(d.Seconds())
		}
		span.InferNS = d.Nanoseconds()
		mark = next
	}
	inference.ResolveConflictsTraced(res, levelOf, rec)
	s.stats.InferenceTime += time.Since(start)
	if timed {
		next := time.Now()
		d := next.Sub(mark)
		if tel != nil {
			tel.StageConflict.Observe(d.Seconds())
		}
		span.ConflictNS = d.Nanoseconds()
		mark = next
	}

	out := &EpochOutput{Result: res, RawResult: raw, Mode: mode}
	out.Events = s.comp.Compress(res)

	// Exit handling (§IV-C graph pruning): objects observed at an exit
	// location this epoch left the world properly; they are retired
	// together with everything they (reportedly) contain, containers
	// first.
	retired := s.exitSet(res)
	for _, g := range retired {
		if rec != nil && rec.Traces(g) {
			loc, ok := res.Locations[g]
			if !ok {
				loc = model.LocationNone
			}
			rec.Record(trace.Record{
				Epoch: now, Tag: g, Mech: trace.MechRetired, Loc: loc,
			})
		}
		out.Events = append(out.Events, s.comp.Retire(g, now)...)
		s.graph.RemoveNode(g)
		s.dedup.Forget(g)
		s.tombstones[g] = struct{}{}
	}
	out.Retired = retired

	if s.watch != nil {
		s.watch.BeginEpoch(now)
		s.watch.Dispatch(out.Events...)
		s.watch.EndEpoch(now)
	}

	evBytes := event.StreamSize(out.Events)
	s.stats.Events += int64(len(out.Events))
	s.stats.EventBytes += evBytes
	if timed {
		d := time.Since(mark)
		if tel != nil {
			tel.StageCompress.Observe(d.Seconds())
		}
		span.CompressNS = d.Nanoseconds()
	}
	if tel != nil {
		tel.Epochs.Inc()
		tel.Readings.Add(rawReadings)
		tel.Retired.Add(int64(len(retired)))
		ist := s.inf.LastStats()
		tel.InferDirty.Add(int64(ist.DirtyComponents))
		tel.InferClean.Add(int64(ist.CleanComponents))
		tel.InferNodesRun.Add(int64(ist.NodesInferred))
		tel.InferNodesCached.Add(int64(ist.NodesCached))
		tel.InferWorkersGauge.Set(int64(ist.Workers))
		tel.Graph.Record(s.graph)
		openLocs, openConts := s.comp.Opens()
		tel.Comp.Record(openLocs, openConts, len(out.Events), evBytes)
	}
	if rec != nil {
		span.Partial = res.Partial
		span.Events = int64(len(out.Events))
		span.Bytes = evBytes
		span.Retired = int64(len(retired))
		rec.EndEpoch(*span)
	}
	return out
}

// exitSet collects the objects retiring this epoch: those observed at an
// exit location plus, transitively, the objects whose chosen container is
// retiring. Sorted containers-first (level descending, then tag).
func (s *Substrate) exitSet(res *inference.Result) []model.Tag {
	if len(s.exits) == 0 {
		return nil
	}
	var seeds []model.Tag
	for g, obs := range res.Observed {
		if obs && s.exits[res.Locations[g]] {
			seeds = append(seeds, g)
		}
	}
	if len(seeds) == 0 {
		return nil
	}
	sortTags(seeds) // one deterministic order for the whole walk
	children := make(map[model.Tag][]model.Tag)
	for c, p := range res.Parents {
		if p != model.NoTag {
			children[p] = append(children[p], c)
		}
	}
	set := make(map[model.Tag]bool)
	var walk func(model.Tag)
	walk = func(g model.Tag) {
		if set[g] {
			return
		}
		set[g] = true
		for _, c := range children[g] {
			walk(c)
		}
	}
	for _, g := range seeds {
		walk(g)
	}
	out := make([]model.Tag, 0, len(set))
	for g := range set {
		out = append(out, g)
	}
	slices.SortFunc(out, func(a, b model.Tag) int {
		if la, lb := levelOf(a), levelOf(b); la != lb {
			return cmp.Compare(lb, la) // containers (higher levels) first
		}
		return cmp.Compare(a, b)
	})
	return out
}

// sortTags sorts a tag slice ascending — the one comparator shared by
// every deterministic-ordering site (retire walks, tombstone snapshots,
// impacted-tag seeds) instead of a per-call sort.Slice closure.
func sortTags(tags []model.Tag) {
	slices.Sort(tags)
}

// Close ends all open pairs at epoch now, producing the closing events of
// a finished run.
func (s *Substrate) Close(now model.Epoch) []event.Event {
	evs := s.comp.Close(now)
	if s.watch != nil {
		s.watch.BeginEpoch(now)
		s.watch.Dispatch(evs...)
		s.watch.EndEpoch(now)
	}
	s.stats.Events += int64(len(evs))
	s.stats.EventBytes += event.StreamSize(evs)
	return evs
}
