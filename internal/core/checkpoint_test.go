package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"spire/internal/checkpoint"
	"spire/internal/event"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/sim"
)

// buildTrace steps a fast warehouse trace and returns the per-epoch
// observations along with the simulator (whose Readers/Locations describe
// the deployment). Observations are returned pristine — feed clones to
// the substrate, which consumes them destructively.
func buildTrace(t *testing.T, duration model.Epoch) ([]*model.Observation, *sim.Simulator) {
	t.Helper()
	s := fastSim(t, func(c *sim.Config) { c.Duration = duration })
	var trace []*model.Observation
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		trace = append(trace, o)
	}
	return trace, s
}

// encodeEvents renders an event stream in the binary wire format so
// streams can be compared byte for byte.
func encodeEvents(t *testing.T, evs []event.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := event.NewWriter(&buf)
	for _, e := range evs {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// feedStore indexes an event stream into a fresh query store.
func feedStore(t *testing.T, evs []event.Event) *query.Store {
	t.Helper()
	st := query.NewStore()
	if err := st.Feed(evs...); err != nil {
		t.Fatal(err)
	}
	return st
}

// compareStores deep-compares the queryable contents of two stores.
func compareStores(t *testing.T, got, want *query.Store, ctx string) {
	t.Helper()
	gobjs, wobjs := got.Objects(), want.Objects()
	if !reflect.DeepEqual(gobjs, wobjs) {
		t.Fatalf("%s: object sets differ: %d vs %d objects", ctx, len(gobjs), len(wobjs))
	}
	for _, obj := range wobjs {
		if !reflect.DeepEqual(got.History(obj), want.History(obj)) {
			t.Fatalf("%s: object %d history differs:\ngot:  %v\nwant: %v",
				ctx, obj, got.History(obj), want.History(obj))
		}
		if !reflect.DeepEqual(got.Containments(obj), want.Containments(obj)) {
			t.Fatalf("%s: object %d containments differ:\ngot:  %v\nwant: %v",
				ctx, obj, got.Containments(obj), want.Containments(obj))
		}
		if !reflect.DeepEqual(got.MissingReports(obj), want.MissingReports(obj)) {
			t.Fatalf("%s: object %d missing reports differ", ctx, obj)
		}
	}
}

// testKillRestoreSweep is the keystone test: run a trace once
// uninterrupted, snapshotting after every epoch; then, for every epoch k,
// pretend the process died right after the epoch-k checkpoint, restore
// from it, and replay the rest. The concatenated event stream must be
// byte-identical to the uninterrupted run — compressor open intervals,
// graph memory, dedup history, tombstones and all — and the query store
// built from it must match exactly.
func testKillRestoreSweep(t *testing.T, level CompressionLevel) {
	trace, s := buildTrace(t, 150)
	newSub := func() *Substrate { return newSubstrate(t, s, level) }

	// Uninterrupted reference run, with a snapshot after every epoch.
	sub := newSub()
	perEpoch := make([][]event.Event, len(trace))
	snaps := make([][]byte, len(trace))
	for i, o := range trace {
		out, err := sub.ProcessEpoch(o.Clone())
		if err != nil {
			t.Fatal(err)
		}
		perEpoch[i] = append([]event.Event(nil), out.Events...)
		var buf bytes.Buffer
		if err := sub.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		snaps[i] = buf.Bytes()
	}
	end := trace[len(trace)-1].Time + 1
	closing := sub.Close(end)

	var full []event.Event
	for _, evs := range perEpoch {
		full = append(full, evs...)
	}
	full = append(full, closing...)
	fullBytes := encodeEvents(t, full)
	refStore := feedStore(t, full)
	if len(fullBytes) == 0 {
		t.Fatal("reference run produced no events")
	}

	// Snapshot determinism: same state must give the same bytes.
	var again bytes.Buffer
	if err := sub.Snapshot(&again); err != nil {
		t.Fatal(err)
	}
	var again2 bytes.Buffer
	if err := sub.Snapshot(&again2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), again2.Bytes()) {
		t.Fatal("back-to-back snapshots of identical state differ")
	}

	for k := range trace {
		rsub, err := RestoreSubstrate(bytes.NewReader(snaps[k]))
		if err != nil {
			t.Fatalf("kill at epoch %d: restore: %v", trace[k].Time, err)
		}
		if rsub.LastEpoch() != trace[k].Time {
			t.Fatalf("kill at epoch %d: restored LastEpoch %d", trace[k].Time, rsub.LastEpoch())
		}
		// Restore must be lossless: re-snapshotting the restored substrate
		// reproduces the snapshot bytes exactly (graph, dedup, compressor
		// open intervals included).
		var resnap bytes.Buffer
		if err := rsub.Snapshot(&resnap); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(resnap.Bytes(), snaps[k]) {
			t.Fatalf("kill at epoch %d: snapshot of restored substrate differs from original", trace[k].Time)
		}

		var stream []event.Event
		for i := 0; i <= k; i++ {
			stream = append(stream, perEpoch[i]...)
		}
		for _, o := range trace[k+1:] {
			out, err := rsub.ProcessEpoch(o.Clone())
			if err != nil {
				t.Fatalf("kill at epoch %d: continue: %v", trace[k].Time, err)
			}
			stream = append(stream, out.Events...)
		}
		stream = append(stream, rsub.Close(end)...)
		if !bytes.Equal(encodeEvents(t, stream), fullBytes) {
			t.Fatalf("kill at epoch %d: restored run not byte-identical (%d vs %d events)",
				trace[k].Time, len(stream), len(full))
		}
		compareStores(t, feedStore(t, stream), refStore, fmt.Sprintf("kill at epoch %d", trace[k].Time))
	}
}

func TestKillRestoreSweepLevel1(t *testing.T) { testKillRestoreSweep(t, Level1) }
func TestKillRestoreSweepLevel2(t *testing.T) { testKillRestoreSweep(t, Level2) }

// TestSnapshotCorruption damages a valid snapshot every which way and
// checks that restore fails cleanly — an error, never a panic, never a
// partially restored substrate.
func TestSnapshotCorruption(t *testing.T) {
	trace, s := buildTrace(t, 80)
	sub := newSubstrate(t, s, Level2)
	for _, o := range trace {
		if _, err := sub.ProcessEpoch(o.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sub.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	if _, err := RestoreSubstrate(bytes.NewReader(snap)); err != nil {
		t.Fatalf("pristine snapshot must restore: %v", err)
	}

	// Truncations at every prefix length (stride keeps it fast).
	for cut := 0; cut < len(snap); cut += 7 {
		if _, err := RestoreSubstrate(bytes.NewReader(snap[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes must fail", cut)
		}
	}
	// Bit flips across the file.
	for off := 0; off < len(snap); off += 11 {
		dam := append([]byte(nil), snap...)
		dam[off] ^= 0x40
		if _, err := RestoreSubstrate(bytes.NewReader(dam)); err == nil {
			t.Fatalf("bit flip at offset %d must fail", off)
		}
	}
	// Wrong magic and future version must be identified as such.
	dam := append([]byte(nil), snap...)
	dam[0] ^= 0xFF
	if _, err := RestoreSubstrate(bytes.NewReader(dam)); !errors.Is(err, checkpoint.ErrCorrupt) {
		t.Errorf("bad magic: got %v, want ErrCorrupt", err)
	}
	dam = append([]byte(nil), snap...)
	dam[8], dam[9] = 0xFF, 0xFF
	if _, err := RestoreSubstrate(bytes.NewReader(dam)); !errors.Is(err, checkpoint.ErrVersion) {
		t.Errorf("future version: got %v, want ErrVersion", err)
	}
}

// TestRunnerCheckpointResume drives the runner end to end: checkpoint
// every N epochs, cancel mid-run right after a checkpoint boundary (the
// "kill"), restore from the file, and resume with the full input replayed
// under the reject policy. The concatenated output must be byte-identical
// to an uninterrupted runner pass.
func TestRunnerCheckpointResume(t *testing.T) {
	trace, s := buildTrace(t, 120)
	ckpt := filepath.Join(t.TempDir(), "state.ckpt")
	const killAfter = 60 // multiple of CheckpointEvery below

	// Uninterrupted reference pass.
	var want []event.Event
	runAll := func(r *Runner, obs []*model.Observation) []event.Event {
		t.Helper()
		in := make(chan *model.Observation)
		out := make(chan *EpochOutput, 1)
		errc := make(chan error, 1)
		go func() { errc <- r.Run(context.Background(), in, out) }()
		var evs []event.Event
		done := make(chan struct{})
		go func() {
			defer close(done)
			for po := range out {
				evs = append(evs, po.Events...)
			}
		}()
		for _, o := range obs {
			in <- o.Clone()
		}
		close(in)
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		<-done
		return evs
	}
	want = runAll(NewRunner(newSubstrate(t, s, Level1)), trace)

	// Killed pass: process the first killAfter epochs, then cancel.
	sub := newSubstrate(t, s, Level1)
	runner := NewRunnerConfigured(sub, RunnerConfig{CheckpointPath: ckpt, CheckpointEvery: 10})
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *model.Observation)
	out := make(chan *EpochOutput, 1)
	errc := make(chan error, 1)
	go func() { errc <- runner.Run(ctx, in, out) }()
	var got []event.Event
	for _, o := range trace[:killAfter] {
		in <- o.Clone()
		po := <-out
		got = append(got, po.Events...)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: %v", err)
	}

	// Resume from the checkpoint with the whole input replayed: the gate
	// must drop the already-processed epochs.
	rsub, err := RestoreSubstrateFromFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if rsub.LastEpoch() != trace[killAfter-1].Time {
		t.Fatalf("checkpoint at epoch %d, want %d", rsub.LastEpoch(), trace[killAfter-1].Time)
	}
	resumed := NewRunnerConfigured(rsub, RunnerConfig{
		CheckpointPath:  ckpt,
		CheckpointEvery: 10,
		Ingest:          IngestConfig{Policy: IngestReject},
	})
	got = append(got, runAll(resumed, trace)...)
	if resumed.IngestStats().Stale != killAfter {
		t.Errorf("gate dropped %d stale epochs, want %d", resumed.IngestStats().Stale, killAfter)
	}

	if !bytes.Equal(encodeEvents(t, got), encodeEvents(t, want)) {
		t.Fatalf("resumed stream not byte-identical: %d vs %d events", len(got), len(want))
	}

	// The final checkpoint written at clean end of input restores to the
	// last epoch.
	final, err := RestoreSubstrateFromFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if final.LastEpoch() != trace[len(trace)-1].Time {
		t.Errorf("final checkpoint at epoch %d, want %d", final.LastEpoch(), trace[len(trace)-1].Time)
	}
}

// TestWriteFileAtomic checks the crash-safety contract of checkpoint
// files: a failed write leaves no file (and no temp droppings) behind.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ckpt")
	if err := checkpoint.WriteFileAtomic(path, func(w io.Writer) error {
		return errors.New("boom")
	}); err == nil {
		t.Fatal("write error must propagate")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed atomic write left %d files behind", len(entries))
	}
}
