package core

import (
	"testing"

	"spire/internal/compress"
	"spire/internal/epc"
	"spire/internal/event"
	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/query"
	"spire/internal/sim"
)

func fastSim(t *testing.T, mutate func(*sim.Config)) *sim.Simulator {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Duration = 400
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newSubstrate(t *testing.T, s *sim.Simulator, level CompressionLevel) *Substrate {
	t.Helper()
	sub, err := New(Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: level,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func TestNewValidation(t *testing.T) {
	s := fastSim(t, nil)
	if _, err := New(Config{Locations: s.Locations()}); err == nil {
		t.Error("missing readers must fail")
	}
	if _, err := New(Config{Readers: s.Readers()}); err == nil {
		t.Error("missing locations must fail")
	}
	if _, err := New(Config{Readers: s.Readers(), Locations: s.Locations(),
		Inference: inference.DefaultConfig(), Compression: 7}); err == nil {
		t.Error("unknown compression level must fail")
	}
	dup := append([]model.Reader{}, s.Readers()...)
	dup = append(dup, s.Readers()[0])
	if _, err := New(Config{Readers: dup, Locations: s.Locations(),
		Inference: inference.DefaultConfig()}); err == nil {
		t.Error("duplicate reader IDs must fail")
	}
	bad := Config{Readers: s.Readers(), Locations: s.Locations()}
	bad.Inference.Beta = 7
	if _, err := New(bad); err == nil {
		t.Error("invalid inference config must fail")
	}
}

func TestProcessEpochGuards(t *testing.T) {
	s := fastSim(t, nil)
	sub := newSubstrate(t, s, Level1)
	if _, err := sub.ProcessEpoch(nil); err == nil {
		t.Error("nil observation must fail")
	}
	o := model.NewObservation(5)
	if _, err := sub.ProcessEpoch(o); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.ProcessEpoch(model.NewObservation(5)); err == nil {
		t.Error("non-advancing epoch must fail")
	}
	unk := model.NewObservation(6)
	unk.Add(999, 1)
	if _, err := sub.ProcessEpoch(unk); err == nil {
		t.Error("reading from unknown reader must fail")
	}
}

// TestEndToEndWellFormed runs the full pipeline over a simulated trace
// and checks the global properties: a well-formed closed output stream,
// retirement of exited objects, and populated stats. (Losslessness is
// checked separately by TestLosslessObservations.)
func TestEndToEndWellFormed(t *testing.T) {
	s := fastSim(t, nil)
	sub := newSubstrate(t, s, Level1)
	var all []event.Event
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, out.Events...)
		for _, g := range out.Retired {
			if sub.Graph().Node(g) != nil {
				t.Fatalf("retired object %d still in graph", g)
			}
		}
	}
	all = append(all, sub.Close(s.Now()+1)...)
	if err := event.CheckWellFormed(all, true); err != nil {
		t.Fatalf("output stream: %v", err)
	}
	st := sub.Stats()
	if st.Epochs == 0 || st.Readings == 0 || st.Events == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if st.EventBytes >= st.RawBytes {
		t.Errorf("compressed output (%d B) should undercut raw input (%d B)", st.EventBytes, st.RawBytes)
	}
	if st.UpdateTime <= 0 || st.InferenceTime <= 0 {
		t.Errorf("timing stats not populated: %+v", st)
	}
}

// TestEndToEndLevel2Decompression checks, on a complete-inference
// deployment (every reader at period 1), that the decompressed level-2
// stream matches the level-1 stream object for object.
func TestEndToEndLevel2Decompression(t *testing.T) {
	mkSim := func() *sim.Simulator {
		return fastSim(t, func(c *sim.Config) { c.ShelfPeriod = 1 })
	}
	s1, s2 := mkSim(), mkSim()
	subL1 := newSubstrate(t, s1, Level1)
	subL2 := newSubstrate(t, s2, Level2)
	dec := compress.NewDecompressor()

	var l1all, l2all, decall []event.Event
	for !s1.Done() {
		o1, err := s1.Step()
		if err != nil {
			t.Fatal(err)
		}
		o2, err := s2.Step()
		if err != nil {
			t.Fatal(err)
		}
		out1, err := subL1.ProcessEpoch(o1)
		if err != nil {
			t.Fatal(err)
		}
		out2, err := subL2.ProcessEpoch(o2)
		if err != nil {
			t.Fatal(err)
		}
		l1all = append(l1all, out1.Events...)
		l2all = append(l2all, out2.Events...)
		d, err := dec.Step(out2.Events)
		if err != nil {
			t.Fatal(err)
		}
		decall = append(decall, d...)
	}
	end := s1.Now() + 1
	c1 := subL1.Close(end)
	c2 := subL2.Close(end)
	l1all = append(l1all, c1...)
	l2all = append(l2all, c2...)
	d, err := dec.Step(c2)
	if err != nil {
		t.Fatal(err)
	}
	decall = append(decall, d...)
	decall = append(decall, dec.Close(end)...)

	if err := event.CheckWellFormed(l1all, true); err != nil {
		t.Fatalf("level-1 stream: %v", err)
	}
	if err := event.CheckWellFormed(l2all, true); err != nil {
		t.Fatalf("level-2 stream: %v", err)
	}
	if err := event.CheckWellFormed(decall, true); err != nil {
		t.Fatalf("decompressed stream: %v", err)
	}
	if event.StreamSize(l2all) >= event.StreamSize(l1all) {
		t.Errorf("level-2 (%d B) should be smaller than level-1 (%d B)",
			event.StreamSize(l2all), event.StreamSize(l1all))
	}

	// Containment streams must agree exactly.
	_, gc := event.SplitStreams(decall)
	_, wc := event.SplitStreams(l1all)
	if len(gc) != len(wc) {
		t.Fatalf("containment events: %d vs %d", len(gc), len(wc))
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("containment event %d: %v vs %v", i, gc[i], wc[i])
		}
	}
	// Location streams must agree per object.
	perObj := func(evs []event.Event) map[model.Tag][]event.Event {
		m := make(map[model.Tag][]event.Event)
		for _, e := range evs {
			if !e.Kind.Containment() {
				m[e.Object] = append(m[e.Object], e)
			}
		}
		return m
	}
	gm, wm := perObj(decall), perObj(l1all)
	for obj, ws := range wm {
		gs := gm[obj]
		if len(gs) != len(ws) {
			t.Errorf("object %d: %d vs %d location events\ngot:  %v\nwant: %v",
				obj, len(gs), len(ws), gs, ws)
			continue
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Errorf("object %d event %d: got %v, want %v", obj, i, gs[i], ws[i])
			}
		}
	}
}

// TestLosslessObservations verifies the paper's losslessness property:
// every observed object is truthfully reflected in the compressed output
// — replaying the output stream, each object reads back at the location
// where it was observed, at every epoch it was observed.
func TestLosslessObservations(t *testing.T) {
	s := fastSim(t, nil)
	sub := newSubstrate(t, s, Level1)
	store := query.NewStore()
	type obs struct {
		at  model.Epoch
		obj model.Tag
		loc model.LocationID
	}
	var observed []obs
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.Feed(out.Events...); err != nil {
			t.Fatal(err)
		}
		retired := make(map[model.Tag]bool, len(out.Retired))
		for _, g := range out.Retired {
			retired[g] = true
		}
		for g, seen := range out.Result.Observed {
			// Objects retired this epoch close their interval at the
			// observation epoch itself (a half-open zero-length stay).
			if seen && !retired[g] {
				observed = append(observed, obs{at: o.Time, obj: g, loc: out.Result.Locations[g]})
			}
		}
	}
	if err := store.Feed(sub.Close(s.Now() + 1)...); err != nil {
		t.Fatal(err)
	}
	if len(observed) == 0 {
		t.Fatal("no observations recorded")
	}
	wrong := 0
	for _, o := range observed {
		got, ok := store.LocationAt(o.obj, o.at)
		if !ok || got != o.loc {
			wrong++
			if wrong <= 3 {
				t.Errorf("object %d observed at %v in epoch %d, stream says %v,%v",
					o.obj, o.loc, o.at, got, ok)
			}
		}
	}
	if wrong > 0 {
		t.Fatalf("%d of %d observations not reflected in the output", wrong, len(observed))
	}
}

// TestStationaryWorldQuiesces checks the compression premise end to end:
// once the warehouse state stops changing, the output stream goes silent.
func TestStationaryWorldQuiesces(t *testing.T) {
	s := fastSim(t, func(c *sim.Config) {
		c.Duration = 200
		c.PalletInterval = 1000 // one pallet, injected at epoch 1
		c.ShelfTime = 10000     // cases never leave the shelf
		c.ShelfPeriod = 5
		c.ReadRate = 1
	})
	sub := newSubstrate(t, s, Level1)
	quietAfter := model.Epoch(120) // lifecycle settles well before this
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		if s.Now() > quietAfter && len(out.Events) > 0 {
			t.Fatalf("epoch %d: stationary world still emits %v", s.Now(), out.Events)
		}
	}
}

// TestDroppedItemReportedUncontained replays the running example's item 6:
// an item falls off its case on the receiving belt; once the case is
// observed elsewhere, SPIRE must end the reported containment.
func TestDroppedItemReportedUncontained(t *testing.T) {
	s := fastSim(t, func(c *sim.Config) {
		c.Duration = 600
		c.ItemDropRate = 0.6
		c.ReadRate = 1
		c.ShelfPeriod = 5
	})
	sub := newSubstrate(t, s, Level1)
	ended := make(map[model.Tag]bool)
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range out.Events {
			if e.Kind == event.EndContainment {
				ended[e.Object] = true
			}
		}
	}
	drops := s.Drops()
	if len(drops) == 0 {
		t.Fatal("trace produced no drops")
	}
	missed := 0
	for _, d := range drops {
		if !ended[d.Item] {
			missed++
		}
	}
	if missed > 0 {
		t.Errorf("%d of %d dropped items never had their containment ended", missed, len(drops))
	}
}

// TestWronglyRetiredObjectResurrects reproduces the hazard of exit-side
// retirement: an object whose stale containment makes it look like it
// left inside a departing container (because it was missed at the very
// epoch it split off) is retired and tombstoned — but its next reading by
// a non-exit reader must bring it back, and its true containment must
// re-establish.
func TestWronglyRetiredObjectResurrects(t *testing.T) {
	s := fastSim(t, func(c *sim.Config) {
		c.Duration = 60
		c.PalletInterval = 1000 // single pallet
		c.ShelfPeriod = 10
		c.ReadRate = 1 // deterministic reads; we fabricate the miss below
	})
	sub, err := New(Config{
		Readers:       s.Readers(),
		Locations:     s.Locations(),
		Inference:     inference.DefaultConfig(),
		KeepRawResult: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Find the epoch at which the first case hits the receiving belt and
	// drop its reading there for that one epoch, while the emptied pallet
	// is being read at the exit.
	var victim model.Tag
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		beltID := s.Readers()[1].ID // receiving belt
		if victim == model.NoTag {
			for _, g := range o.ByReader[beltID] {
				if lvl := levelOfTag(g); lvl == model.LevelCase {
					victim = g
					// Miss the case in this epoch's belt reading.
					kept := o.ByReader[beltID][:0]
					for _, h := range o.ByReader[beltID] {
						if h != g {
							kept = append(kept, h)
						}
					}
					o.ByReader[beltID] = kept
					break
				}
			}
		}
		if _, err := sub.ProcessEpoch(o); err != nil {
			t.Fatal(err)
		}
		if victim != model.NoTag && s.Now() >= 20 {
			break
		}
	}
	if victim == model.NoTag {
		t.Fatal("no case reached the belt")
	}
	// After the missed epoch the case was read again on the belt: it must
	// be live in the graph with its items' containment re-confirmed.
	n := sub.Graph().Node(victim)
	if n == nil {
		t.Fatal("victim case must be resurrected in the graph")
	}
	if n.NumChildren() == 0 {
		t.Error("resurrected case must regain its item edges")
	}
	if _, dead := sub.tombstones[victim]; dead {
		t.Error("victim must not remain tombstoned")
	}
}

func levelOfTag(g model.Tag) model.Level {
	l, _ := epc.LevelOf(g)
	return l
}

func TestPartialInferenceEpochsRun(t *testing.T) {
	s := fastSim(t, func(c *sim.Config) { c.ShelfPeriod = 7 })
	sub := newSubstrate(t, s, Level1)
	modes := map[inference.Mode]int{}
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out, err := sub.ProcessEpoch(o)
		if err != nil {
			t.Fatal(err)
		}
		modes[out.Mode]++
	}
	if modes[inference.Partial] == 0 || modes[inference.Complete] == 0 {
		t.Errorf("expected both modes with a period-7 shelf reader: %v", modes)
	}
	if sub.Schedule().CompleteEvery() != 7 {
		t.Errorf("schedule M = %d, want 7", sub.Schedule().CompleteEvery())
	}
}
