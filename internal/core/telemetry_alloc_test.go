package core

import (
	"testing"
	"time"

	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/telemetry"
	"spire/internal/trace"
)

// The telemetry overhead contract: recording is atomic stores and array
// increments, so instrumenting the per-epoch hot loop — graph update,
// complete inference, conflict resolution — adds zero allocations per
// epoch. Pinned two ways: the recording calls ProcessEpoch makes are
// 0 allocs/op in absolute terms, and the hot loop's Allocs/op is
// identical with telemetry on and off.

// warmInstrumented processes a full trace so every internal buffer has
// reached steady state, then returns the substrate and a steady-state
// observation to replay.
func warmInstrumented(tb testing.TB) (*Substrate, *model.Observation) {
	tb.Helper()
	cfg := sim.DefaultConfig()
	cfg.Duration = 200
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	sub, err := New(Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: Level2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sub.Instrument(telemetry.NewRegistry())
	var last *model.Observation
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			tb.Fatal(err)
		}
		last = o.Clone()
		if _, err := sub.ProcessEpoch(o); err != nil {
			tb.Fatal(err)
		}
	}
	return sub, last
}

// hotEpoch replays one epoch of the hot loop against the warm substrate,
// with the same stage sequence and the same tel/rec gating as
// ProcessEpoch. Nil tel and rec is the unobserved baseline.
func hotEpoch(tb testing.TB, sub *Substrate, o *model.Observation, now model.Epoch, tel *Instruments, rec *trace.Recorder) {
	timed := tel != nil || rec != nil
	var mark time.Time
	if timed {
		mark = time.Now()
	}
	var span trace.Span
	if rec != nil {
		rec.BeginEpoch(now)
		span.Epoch = now
		span.Readings = int64(o.Total())
	}
	for _, id := range sub.order {
		tags, ok := o.ByReader[id]
		if !ok {
			continue
		}
		if err := sub.graph.Update(sub.readers[id], tags, now); err != nil {
			tb.Fatal(err)
		}
	}
	if timed {
		next := time.Now()
		d := next.Sub(mark)
		if tel != nil {
			tel.StageUpdate.Observe(d.Seconds())
		}
		span.UpdateNS = d.Nanoseconds()
		mark = next
	}
	res := sub.inf.Infer(sub.graph, now, inference.Complete)
	if timed {
		next := time.Now()
		d := next.Sub(mark)
		if tel != nil {
			tel.StageInfer.Observe(d.Seconds())
		}
		span.InferNS = d.Nanoseconds()
		mark = next
	}
	inference.ResolveConflictsTraced(res, levelOf, rec)
	if timed {
		d := time.Since(mark)
		if tel != nil {
			tel.StageConflict.Observe(d.Seconds())
		}
		span.ConflictNS = d.Nanoseconds()
	}
	if tel != nil {
		tel.Epochs.Inc()
		tel.Readings.Add(int64(o.Total()))
		ist := sub.InferStats()
		tel.InferDirty.Add(int64(ist.DirtyComponents))
		tel.InferClean.Add(int64(ist.CleanComponents))
		tel.InferNodesRun.Add(int64(ist.NodesInferred))
		tel.InferNodesCached.Add(int64(ist.NodesCached))
		tel.InferWorkersGauge.Set(int64(ist.Workers))
		tel.Graph.Record(sub.graph)
		openLocs, openConts := sub.comp.Opens()
		tel.Comp.Record(openLocs, openConts, 0, 0)
	}
	if rec != nil {
		rec.EndEpoch(span)
	}
}

// TestInstrumentedHotPathAllocs pins the zero-overhead bar: every
// recording call ProcessEpoch makes is allocation-free, and instrumenting
// the hot loop does not change its Allocs/op at all.
func TestInstrumentedHotPathAllocs(t *testing.T) {
	sub, o := warmInstrumented(t)
	tel := sub.tel
	now := sub.LastEpoch()

	// The full set of per-epoch recording calls, in absolute terms.
	recording := testing.AllocsPerRun(200, func() {
		tel.StageDedup.Observe(0.001)
		tel.StageUpdate.Observe(0.001)
		tel.StageInfer.Observe(0.001)
		tel.StageConflict.Observe(0.001)
		tel.StageCompress.Observe(0.001)
		tel.Epochs.Inc()
		tel.Readings.Add(int64(o.Total()))
		tel.Retired.Add(0)
		ist := sub.InferStats()
		tel.InferDirty.Add(int64(ist.DirtyComponents))
		tel.InferClean.Add(int64(ist.CleanComponents))
		tel.InferNodesRun.Add(int64(ist.NodesInferred))
		tel.InferNodesCached.Add(int64(ist.NodesCached))
		tel.InferWorkersGauge.Set(int64(ist.Workers))
		tel.Graph.Record(sub.graph)
		openLocs, openConts := sub.comp.Opens()
		tel.Comp.Record(openLocs, openConts, 3, 64)
	})
	if recording != 0 {
		t.Errorf("telemetry recording allocates %.1f allocs/op, want 0", recording)
	}

	// The hot loop must allocate exactly as much instrumented as not:
	// whatever the stages themselves allocate, telemetry adds nothing.
	baseline := testing.AllocsPerRun(200, func() {
		now++
		hotEpoch(t, sub, o, now, nil, nil)
	})
	instrumented := testing.AllocsPerRun(200, func() {
		now++
		hotEpoch(t, sub, o, now, tel, nil)
	})
	if instrumented != baseline {
		t.Errorf("instrumented hot loop allocates %.1f allocs/op vs %.1f uninstrumented; telemetry overhead must be 0",
			instrumented, baseline)
	}

	// The same bar holds for tracing. A recorder with no traced tags still
	// rides the hot loop (flight spans, mechanism counters) but keeps all
	// per-tag storage off; its records land in preallocated rings, so the
	// untraced-tags hot path must match the baseline exactly. The fully
	// disabled mode (nil recorder) is gated out before any call and cannot
	// do better than this.
	recOff := trace.New(trace.Config{})
	sub.graph.SetTracer(recOff)
	sub.inf.SetTracer(recOff)
	tracedOff := testing.AllocsPerRun(200, func() {
		now++
		hotEpoch(t, sub, o, now, nil, recOff)
	})
	sub.graph.SetTracer(nil)
	sub.inf.SetTracer(nil)
	if tracedOff != baseline {
		t.Errorf("hot loop with a no-tags recorder allocates %.1f allocs/op vs %.1f baseline; tracing overhead must be 0",
			tracedOff, baseline)
	}
}

// BenchmarkInstrumentedEpochLoop reports the per-epoch cost of the
// instrumented hot loop; ReportAllocs keeps the overhead claim auditable
// next to BenchmarkEpochLoopBaseline in benchmark output.
func BenchmarkInstrumentedEpochLoop(b *testing.B) {
	sub, o := warmInstrumented(b)
	now := sub.LastEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		hotEpoch(b, sub, o, now, sub.tel, nil)
	}
}

// BenchmarkEpochLoopBaseline is the same loop with telemetry disabled.
func BenchmarkEpochLoopBaseline(b *testing.B) {
	sub, o := warmInstrumented(b)
	now := sub.LastEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		hotEpoch(b, sub, o, now, nil, nil)
	}
}
