package core

import (
	"testing"
	"time"

	"spire/internal/inference"
	"spire/internal/model"
	"spire/internal/sim"
	"spire/internal/telemetry"
)

// The telemetry overhead contract: recording is atomic stores and array
// increments, so instrumenting the per-epoch hot loop — graph update,
// complete inference, conflict resolution — adds zero allocations per
// epoch. Pinned two ways: the recording calls ProcessEpoch makes are
// 0 allocs/op in absolute terms, and the hot loop's Allocs/op is
// identical with telemetry on and off.

// warmInstrumented processes a full trace so every internal buffer has
// reached steady state, then returns the substrate and a steady-state
// observation to replay.
func warmInstrumented(tb testing.TB) (*Substrate, *model.Observation) {
	tb.Helper()
	cfg := sim.DefaultConfig()
	cfg.Duration = 200
	cfg.PalletInterval = 40
	cfg.ItemsPerCase = 3
	cfg.ShelfTime = 60
	cfg.ShelfPeriod = 10
	s, err := sim.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	sub, err := New(Config{
		Readers:     s.Readers(),
		Locations:   s.Locations(),
		Inference:   inference.DefaultConfig(),
		Compression: Level2,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sub.Instrument(telemetry.NewRegistry())
	var last *model.Observation
	for !s.Done() {
		o, err := s.Step()
		if err != nil {
			tb.Fatal(err)
		}
		last = o.Clone()
		if _, err := sub.ProcessEpoch(o); err != nil {
			tb.Fatal(err)
		}
	}
	return sub, last
}

// hotEpoch replays one epoch of the hot loop against the warm substrate,
// with the same stage sequence and the same tel != nil gating as
// ProcessEpoch. A nil tel is the uninstrumented baseline.
func hotEpoch(tb testing.TB, sub *Substrate, o *model.Observation, now model.Epoch, tel *Instruments) {
	var mark time.Time
	if tel != nil {
		mark = time.Now()
	}
	for _, id := range sub.order {
		tags, ok := o.ByReader[id]
		if !ok {
			continue
		}
		if err := sub.graph.Update(sub.readers[id], tags, now); err != nil {
			tb.Fatal(err)
		}
	}
	if tel != nil {
		next := time.Now()
		tel.StageUpdate.Observe(next.Sub(mark).Seconds())
		mark = next
	}
	res := sub.inf.Infer(sub.graph, now, inference.Complete)
	if tel != nil {
		next := time.Now()
		tel.StageInfer.Observe(next.Sub(mark).Seconds())
		mark = next
	}
	inference.ResolveConflicts(res, levelOf)
	if tel != nil {
		tel.StageConflict.Observe(time.Since(mark).Seconds())
		tel.Epochs.Inc()
		tel.Readings.Add(int64(o.Total()))
		tel.Graph.Record(sub.graph)
		openLocs, openConts := sub.comp.Opens()
		tel.Comp.Record(openLocs, openConts, 0, 0)
	}
}

// TestInstrumentedHotPathAllocs pins the zero-overhead bar: every
// recording call ProcessEpoch makes is allocation-free, and instrumenting
// the hot loop does not change its Allocs/op at all.
func TestInstrumentedHotPathAllocs(t *testing.T) {
	sub, o := warmInstrumented(t)
	tel := sub.tel
	now := sub.LastEpoch()

	// The full set of per-epoch recording calls, in absolute terms.
	recording := testing.AllocsPerRun(200, func() {
		tel.StageDedup.Observe(0.001)
		tel.StageUpdate.Observe(0.001)
		tel.StageInfer.Observe(0.001)
		tel.StageConflict.Observe(0.001)
		tel.StageCompress.Observe(0.001)
		tel.Epochs.Inc()
		tel.Readings.Add(int64(o.Total()))
		tel.Retired.Add(0)
		tel.Graph.Record(sub.graph)
		openLocs, openConts := sub.comp.Opens()
		tel.Comp.Record(openLocs, openConts, 3, 64)
	})
	if recording != 0 {
		t.Errorf("telemetry recording allocates %.1f allocs/op, want 0", recording)
	}

	// The hot loop must allocate exactly as much instrumented as not:
	// whatever the stages themselves allocate, telemetry adds nothing.
	baseline := testing.AllocsPerRun(200, func() {
		now++
		hotEpoch(t, sub, o, now, nil)
	})
	instrumented := testing.AllocsPerRun(200, func() {
		now++
		hotEpoch(t, sub, o, now, tel)
	})
	if instrumented != baseline {
		t.Errorf("instrumented hot loop allocates %.1f allocs/op vs %.1f uninstrumented; telemetry overhead must be 0",
			instrumented, baseline)
	}
}

// BenchmarkInstrumentedEpochLoop reports the per-epoch cost of the
// instrumented hot loop; ReportAllocs keeps the overhead claim auditable
// next to BenchmarkEpochLoopBaseline in benchmark output.
func BenchmarkInstrumentedEpochLoop(b *testing.B) {
	sub, o := warmInstrumented(b)
	now := sub.LastEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		hotEpoch(b, sub, o, now, sub.tel)
	}
}

// BenchmarkEpochLoopBaseline is the same loop with telemetry disabled.
func BenchmarkEpochLoopBaseline(b *testing.B) {
	sub, o := warmInstrumented(b)
	now := sub.LastEpoch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		hotEpoch(b, sub, o, now, nil)
	}
}
